"""Tests for the centralized-server baseline."""

import pytest

from repro.baselines.centralized import CentralizedCalendarBaseline
from repro.util.errors import CalendarError, NotInitiatorError, UnreachableError


@pytest.fixture
def system():
    s = CentralizedCalendarBaseline(days=3, day_start=9, day_end=12)
    for u in ["phil", "andy"]:
        s.add_user(u)
    return s


def test_schedule_immediately_consistent(system):
    mid = system.schedule_meeting("phil", "T", ["andy"])
    assert mid is not None
    assert system.meeting(mid)["status"] == "confirmed"
    slot = system.meeting(mid)["slot"]
    assert system.slot_of("phil", *slot) == mid
    assert system.slot_of("andy", *slot) == mid


def test_schedule_skips_busy_slots(system):
    system.block("andy", 0, 9)
    mid = system.schedule_meeting("phil", "T", ["andy"])
    assert system.meeting(mid)["slot"] == (0, 10)


def test_no_slot_returns_none(system):
    for d in range(3):
        for h in range(9, 12):
            system.block("phil", d, h)
    assert system.schedule_meeting("phil", "T", ["andy"]) is None


def test_cancel(system):
    mid = system.schedule_meeting("phil", "T", ["andy"])
    slot = system.meeting(mid)["slot"]
    system.cancel_meeting("phil", mid)
    assert system.slot_of("andy", *slot) is None
    with pytest.raises(NotInitiatorError):
        system.cancel_meeting("andy", mid)


def test_every_operation_costs_messages(system):
    before = system.messages
    system.slot_of("phil", 0, 9)
    assert system.messages == before + 2


def test_server_down_stops_everything(system):
    system.server_up = False
    with pytest.raises(UnreachableError):
        system.slot_of("phil", 0, 9)
    with pytest.raises(UnreachableError):
        system.schedule_meeting("phil", "T", ["andy"])


def test_storage_all_on_server(system):
    assert system.server_storage_bytes() > 0
    assert system.device_storage_bytes("phil") == 0


def test_unknown_user(system):
    with pytest.raises(CalendarError):
        system.block("ghost", 0, 9)


def test_clock_advances_with_calls(system):
    t0 = system.clock.now()
    system.users()
    assert system.clock.now() > t0
