"""Unit tests for the query-then-write (no-links) baseline."""

import pytest

from repro.baselines.naive import (
    NaiveScheduler,
    run_interleaved_naive,
    run_interleaved_syd,
)
from repro.bench.workloads import build_calendar_population
from repro.util.errors import SchedulingError


@pytest.fixture
def app():
    return build_calendar_population(4, seed=91)


def users_of(app):
    return sorted(app.users)


class TestNaiveScheduler:
    def test_enquire_picks_earliest_common_slot(self, app):
        users = users_of(app)
        plan = NaiveScheduler(app, users[0]).enquire("T", users[1:3])
        assert plan.slot == {"day": 0, "hour": 9}
        assert not plan.written

    def test_enquire_respects_busy_slots(self, app):
        users = users_of(app)
        app.service(users[1]).block({"day": 0, "hour": 9})
        plan = NaiveScheduler(app, users[0]).enquire("T", [users[1]])
        assert plan.slot == {"day": 0, "hour": 10}

    def test_enquire_no_slot_raises(self, app):
        users = users_of(app)
        for row in app.calendar(users[1]).free_slots(0, 4):
            app.service(users[1]).block({"day": row["day"], "hour": row["hour"]})
        with pytest.raises(SchedulingError):
            NaiveScheduler(app, users[0]).enquire("T", [users[1]])

    def test_write_lands_reservations(self, app):
        users = users_of(app)
        scheduler = NaiveScheduler(app, users[0])
        plan = scheduler.schedule("T", users[1:3])
        assert plan.written
        for u in plan.participants:
            row = app.calendar(u).slot_of(plan.slot)
            assert row["meeting_id"] == plan.meeting_id

    def test_write_overwrites_blindly(self, app):
        """The whole point: no mark/lock, so a write tramples whatever
        happened after the enquiry."""
        users = users_of(app)
        scheduler = NaiveScheduler(app, users[0])
        plan = scheduler.enquire("T", [users[1]])
        # Reality changes between enquiry and write:
        app.service(users[1]).block(plan.slot)
        scheduler.write(plan)
        row = app.calendar(users[1]).slot_of(plan.slot)
        assert row["meeting_id"] == plan.meeting_id  # stomped the block


class TestInterleavedRuns:
    def test_naive_race_produces_conflicts(self, app):
        users = users_of(app)
        report = run_interleaved_naive(
            app,
            [(users[0], [users[3]]), (users[1], [users[3]]), (users[2], [users[3]])],
            day_from=0,
            day_to=0,
        )
        assert report.believed_successes == 3
        assert report.double_booked_slots >= 1
        assert report.conflicting_meetings == 3

    def test_syd_same_contention_no_conflicts(self, app):
        users = users_of(app)
        report = run_interleaved_syd(
            app,
            [(users[0], [users[3]]), (users[1], [users[3]]), (users[2], [users[3]])],
            day_from=0,
            day_to=0,
        )
        assert report.believed_successes == 3
        assert report.double_booked_slots == 0
        assert report.conflicting_meetings == 0

    def test_naive_with_impossible_request_skips(self, app):
        users = users_of(app)
        for row in app.calendar(users[3]).free_slots(0, 4):
            app.service(users[3]).block({"day": row["day"], "hour": row["hour"]})
        report = run_interleaved_naive(app, [(users[0], [users[3]])])
        assert report.believed_successes == 0
        assert report.double_booked_slots == 0
