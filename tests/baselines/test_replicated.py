"""Tests for the replicated e-mail baseline (§3.3/§6 behaviours)."""

import pytest

from repro.baselines.replicated import ReplicatedCalendarBaseline
from repro.util.errors import CalendarError, NotInitiatorError


@pytest.fixture
def system():
    s = ReplicatedCalendarBaseline(days=3, day_start=9, day_end=12)
    for u in ["phil", "andy", "suzy"]:
        s.add_user(u)
    return s


class TestReplication:
    def test_everyone_replicates_everyone(self, system):
        assert set(system._replicas["phil"]) == {"andy", "suzy"}

    def test_storage_grows_with_population(self):
        small = ReplicatedCalendarBaseline(days=3, day_start=9, day_end=12)
        for u in ["a", "b"]:
            small.add_user(u)
        big = ReplicatedCalendarBaseline(days=3, day_start=9, day_end=12)
        for u in ["a", "b", "c", "d", "e", "f"]:
            big.add_user(u)
        assert big.storage_bytes("a") > 2 * small.storage_bytes("a")

    def test_replicas_go_stale_until_sync(self, system):
        system.block("andy", 0, 9)
        assert system._replicas["phil"]["andy"][(0, 9)] is None  # stale
        system.sync_replicas()
        assert system._replicas["phil"]["andy"][(0, 9)] == "busy"

    def test_replication_traffic_counted(self, system):
        before = system.replication_messages
        system.sync_replicas()
        assert system.replication_messages == before + 6  # 3 users x 2

    def test_duplicate_user(self, system):
        with pytest.raises(CalendarError):
            system.add_user("phil")


class TestManualScheduling:
    def test_happy_path_requires_manual_accepts(self, system):
        mid, rounds = system.schedule_meeting_full_cycle(
            "phil", "Budget", ["andy", "suzy"]
        )
        assert mid is not None and rounds == 1
        assert system.meeting(mid).status == "confirmed"
        # Everyone wrote the entry.
        slot = system.meeting(mid).slot
        for u in ["phil", "andy", "suzy"]:
            assert system.slot_of(u, *slot) == mid
        # 2 invitations needing action + initiator form + 2 accepts + tally.
        assert system.manual_interventions == 4
        assert system.mail.action_required == 2

    def test_stale_replica_causes_decline_round(self, system):
        # andy blocks 0/9 after the last sync: phil's replica is stale.
        system.block("andy", 0, 9)
        mid = system.request_meeting("phil", "T", ["andy", "suzy"])
        system.process_inbox("andy")
        system.process_inbox("suzy")
        assert system.finalize("phil", mid) == "failed"
        assert system.staleness_failures == 1

    def test_retry_succeeds_after_failure(self, system):
        system.block("andy", 0, 9)
        mid, rounds = system.schedule_meeting_full_cycle("phil", "T", ["andy", "suzy"])
        # First round fails on the stale slot, initiator manually retries.
        assert mid is not None
        assert rounds >= 2

    def test_no_common_slot_in_replicas(self, system):
        for d in range(3):
            for h in range(9, 12):
                system.block("phil", d, h)
        assert system.request_meeting("phil", "T", ["andy"]) is None

    def test_finalize_requires_initiator(self, system):
        mid = system.request_meeting("phil", "T", ["andy"])
        with pytest.raises(NotInitiatorError):
            system.finalize("andy", mid)

    def test_emails_scale_with_participants(self, system):
        before = system.mail.sent
        system.schedule_meeting_full_cycle("phil", "T", ["andy", "suzy"])
        # 2 invites + 2 replies + 2 confirmations.
        assert system.mail.sent - before == 6


class TestCancellation:
    def test_only_initiator_cancels(self, system):
        mid, _ = system.schedule_meeting_full_cycle("phil", "T", ["andy"])
        with pytest.raises(NotInitiatorError):
            system.cancel_meeting("andy", mid)

    def test_cancel_requires_manual_deletes(self, system):
        mid, _ = system.schedule_meeting_full_cycle("phil", "T", ["andy", "suzy"])
        slot = system.meeting(mid).slot
        system.cancel_meeting("phil", mid)
        # Participants still hold the entry until they process mail.
        assert system.slot_of("andy", *slot) == mid
        system.process_cancellation("andy")
        assert system.slot_of("andy", *slot) is None

    def test_no_auto_reschedule(self, system):
        """Cancellation never creates a replacement meeting (§6)."""
        mid, _ = system.schedule_meeting_full_cycle("phil", "T", ["andy"])
        count_before = len(system._meetings)
        system.cancel_meeting("phil", mid)
        assert len(system._meetings) == count_before
