"""Calendar test fixtures."""

import pytest

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp


@pytest.fixture
def app():
    """Calendar app with phil/andy/suzy/raj on a 5-day calendar."""
    world = SyDWorld(seed=11)
    application = SyDCalendarApp(world)
    for user in ["phil", "andy", "suzy", "raj"]:
        application.add_user(user)
    return application


def block_window(app, user, day_from, day_to):
    """Block every free slot of ``user`` in the day window."""
    service = app.service(user)
    cal = app.calendar(user)
    for row in cal.free_slots(day_from, day_to):
        service.block({"day": row["day"], "hour": row["hour"]})
