"""Tests for meeting relocation (§3.2/§5) and delegation (§5)."""

import pytest

from repro.calendar.model import MeetingStatus
from tests.calendar.conftest import block_window
from repro.util.errors import NotInitiatorError


class TestMoveMeeting:
    def test_move_to_explicit_slot(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"], day_from=0, day_to=0)
        old_slot = dict(m.slot)
        moved = app.manager("phil").move_meeting(m.meeting_id, {"day": 1, "hour": 14})
        assert moved is not None
        assert moved.slot == {"day": 1, "hour": 14}
        for user in ["phil", "andy"]:
            assert app.calendar(user).slot_of(old_slot)["status"] == "free"
            assert app.calendar(user).slot_of(moved.slot)["meeting_id"] == m.meeting_id
            assert app.meeting_view(user, m.meeting_id).slot == moved.slot

    def test_move_to_next_available(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"], day_from=0, day_to=0)
        moved = app.manager("phil").move_meeting(m.meeting_id)
        assert moved is not None
        assert (moved.slot["day"], moved.slot["hour"]) > (m.slot["day"], m.slot["hour"])

    def test_move_refused_leaves_meeting_untouched(self, app):
        """§5: 'If not all can agree, then D would be unable to change
        the schedule of the meeting.'"""
        m = app.manager("phil").schedule_meeting("T", ["andy"], day_from=0, day_to=0)
        app.service("andy").block({"day": 1, "hour": 14})
        moved = app.manager("phil").move_meeting(m.meeting_id, {"day": 1, "hour": 14})
        assert moved is None
        for user in ["phil", "andy"]:
            assert app.calendar(user).slot_of(m.slot)["meeting_id"] == m.meeting_id
            assert app.meeting_view(user, m.meeting_id).slot == m.slot

    def test_move_rebuilds_links_at_new_slot(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"], day_from=0, day_to=0)
        moved = app.manager("phil").move_meeting(m.meeting_id, {"day": 2, "hour": 10})
        fwd = app.node("phil").links.links_by_context("meeting_id", m.meeting_id)
        assert any(
            ln.context["role"] == "forward" and ln.source_entity == moved.slot
            for ln in fwd
        )
        back = app.node("andy").links.links_by_context("meeting_id", m.meeting_id)
        assert back[0].source_entity == moved.slot

    def test_only_initiator_moves_directly(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"])
        with pytest.raises(NotInitiatorError):
            app.manager("andy").move_meeting(m.meeting_id)

    def test_participant_requests_move(self, app):
        """§5: D's change attempt routes through the back link to A."""
        m = app.manager("phil").schedule_meeting("T", ["andy"], day_from=0, day_to=0)
        ok = app.manager("andy").request_move(m.meeting_id, {"day": 3, "hour": 11})
        assert ok is True
        assert app.meeting_view("phil", m.meeting_id).slot == {"day": 3, "hour": 11}

    def test_request_move_by_non_participant_denied(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"])
        assert (
            app.node("suzy").engine.execute(
                "phil", "calendar", "move_requested", m.meeting_id, "suzy", None
            )
            is False
        )

    def test_move_cancelled_meeting_refused(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"])
        app.manager("phil").cancel_meeting(m.meeting_id)
        assert app.manager("phil").move_meeting(m.meeting_id) is None

    def test_moved_meeting_emails(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"])
        app.manager("phil").move_meeting(m.meeting_id, {"day": 4, "hour": 9})
        assert any("moved" in mail.subject for mail in app.mail.inbox("andy"))

    def test_move_frees_slot_for_waiting_meeting(self, app):
        """Moving releases the old slots — waiting tentative meetings of
        other initiators promote automatically, like a cancellation."""
        m1 = app.manager("phil").schedule_meeting("First", ["andy"], day_from=0, day_to=0)
        m2 = app.manager("suzy").schedule_meeting(
            "Second", ["raj", "andy"], preferred_slot=m1.slot
        )
        assert m2.status is MeetingStatus.TENTATIVE
        app.manager("phil").move_meeting(m1.meeting_id, {"day": 2, "hour": 9})
        assert app.meeting_view("suzy", m2.meeting_id).status is MeetingStatus.CONFIRMED


class TestDelegation:
    def test_delegate_schedules_with_boss_authority(self, app):
        app.manager("phil").delegate_to("andy")
        meeting = app.manager("andy").schedule_on_behalf(
            "phil", "Budget", ["suzy"], day_from=0, day_to=2
        )
        assert meeting.initiator == "phil"
        assert meeting.status is MeetingStatus.CONFIRMED
        # The meeting lives at phil's node; phil can cancel it.
        app.manager("phil").cancel_meeting(meeting.meeting_id)

    def test_delegate_cannot_cancel_as_self(self, app):
        app.manager("phil").delegate_to("andy")
        meeting = app.manager("andy").schedule_on_behalf("phil", "B", ["suzy"])
        # The delegate is not a participant: no local copy, no authority.
        assert app.meeting_view("andy", meeting.meeting_id) is None
        # A participant who is not the initiator cannot cancel either.
        with pytest.raises(NotInitiatorError):
            app.manager("suzy").cancel_meeting(meeting.meeting_id)

    def test_undelegated_user_rejected(self, app):
        with pytest.raises(NotInitiatorError, match="no delegation"):
            app.manager("andy").schedule_on_behalf("phil", "B", ["suzy"])

    def test_revoked_delegation_rejected(self, app):
        app.manager("phil").delegate_to("andy")
        app.manager("phil").revoke_delegation("andy")
        with pytest.raises(NotInitiatorError):
            app.manager("andy").schedule_on_behalf("phil", "B", ["suzy"])

    def test_delegation_with_or_groups(self, app):
        from repro.calendar.model import OrGroup

        for u in ["b1", "b2", "b3"]:
            app.add_user(u)
        app.manager("phil").delegate_to("andy")
        meeting = app.manager("andy").schedule_on_behalf(
            "phil",
            "Faculty",
            ["b1", "b2", "b3"],
            or_groups=[OrGroup(("b1", "b2", "b3"), 2)],
        )
        assert meeting.initiator == "phil"
        assert len([u for u in meeting.committed if u.startswith("b")]) >= 2

    def test_is_delegate(self, app):
        phil = app.manager("phil")
        assert not phil.is_delegate("andy")
        phil.delegate_to("andy")
        assert phil.is_delegate("andy")
