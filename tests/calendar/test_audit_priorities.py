"""Tests for the consistency auditor and §6 user-rank priorities."""

import pytest

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp
from repro.calendar.audit import audit_world, check_locks
from repro.calendar.model import MeetingStatus, SlotStatus


@pytest.fixture
def ranked_app():
    world = SyDWorld(seed=81)
    app = SyDCalendarApp(world)
    app.add_user("ceo", priority=9)
    app.add_user("manager", priority=3)
    app.add_user("intern")          # rank 0
    app.add_user("staff")           # rank 0
    return app


class TestUserPriorities:
    def test_meeting_inherits_highest_must_attendee_rank(self, ranked_app):
        m = ranked_app.manager("staff").schedule_meeting("1:1", ["ceo"])
        assert m.priority == 9
        m2 = ranked_app.manager("staff").schedule_meeting("peers", ["intern"])
        assert m2.priority == 0

    def test_explicit_priority_overrides(self, ranked_app):
        m = ranked_app.manager("staff").schedule_meeting("low", ["ceo"], priority=1)
        assert m.priority == 1

    def test_ceo_meeting_bumps_intern_meeting_automatically(self, ranked_app):
        app = ranked_app
        low = app.manager("intern").schedule_meeting("peers", ["staff"],
                                                     day_from=0, day_to=0)
        assert low.priority == 0
        high = app.manager("manager").schedule_meeting(
            "exec prep", ["ceo", "staff"], preferred_slot=low.slot
        )
        assert high.status is MeetingStatus.CONFIRMED
        assert app.meeting_view("intern", low.meeting_id).status is MeetingStatus.BUMPED

    def test_supervisor_rank_counts(self, ranked_app):
        m = ranked_app.manager("staff").schedule_meeting(
            "review", ["intern", "ceo"], supervisors=["ceo"]
        )
        assert m.priority == 9

    def test_or_group_members_do_not_raise_priority(self, ranked_app):
        from repro.calendar.model import OrGroup

        m = ranked_app.manager("staff").schedule_meeting(
            "pool", ["intern", "ceo"],
            must_attend=["intern"],
            or_groups=[OrGroup(("ceo",), 1)],
        )
        # ceo is optional: the meeting does not inherit rank 9.
        assert m.priority == 0


class TestAudit:
    def test_clean_world_has_no_violations(self, ranked_app):
        app = ranked_app
        m = app.manager("staff").schedule_meeting("a", ["intern"])
        app.manager("staff").schedule_meeting("b", ["manager"])
        app.manager("staff").cancel_meeting(m.meeting_id)
        assert audit_world(app) == []

    def test_detects_leaked_lock(self, ranked_app):
        app = ranked_app
        app.node("intern").locks.lock("d0h9", "zombie-txn")
        violations = check_locks(app)
        assert len(violations) == 1
        assert violations[0].rule == "locks"
        assert "intern" == violations[0].user

    def test_detects_orphan_slot(self, ranked_app):
        app = ranked_app
        app.calendar("intern").set_slot("d0h9", SlotStatus.RESERVED, meeting_id="ghost")
        violations = audit_world(app)
        assert any(v.rule == "slot-meeting" and "ghost" in v.detail for v in violations)

    def test_detects_divergent_views(self, ranked_app):
        app = ranked_app
        m = app.manager("staff").schedule_meeting("a", ["intern"])
        # Corrupt intern's copy: move it to another slot locally.
        bad = app.calendar("intern").meeting(m.meeting_id)
        bad.slot = {"day": 4, "hour": 16}
        app.calendar("intern").put_meeting(bad)
        violations = audit_world(app)
        assert any(v.rule == "views-agree" for v in violations)

    def test_detects_cancelled_residue(self, ranked_app):
        app = ranked_app
        m = app.manager("staff").schedule_meeting("a", ["intern"])
        app.manager("staff").cancel_meeting(m.meeting_id)
        # Sneak a stale slot back in.
        app.calendar("intern").set_slot(
            "d3h15", SlotStatus.RESERVED, meeting_id=m.meeting_id
        )
        violations = audit_world(app)
        assert any(v.rule == "cancelled-clean" for v in violations)
        assert any(v.rule == "slot-meeting" for v in violations)

    def test_violation_string_form(self, ranked_app):
        app = ranked_app
        app.node("intern").locks.lock("x", "t")
        v = check_locks(app)[0]
        assert "locks" in str(v) and "intern" in str(v)
