"""Tests for dynamic-group scheduling (directory groups)."""

import pytest

from repro.calendar.model import MeetingStatus
from repro.util.errors import UnknownGroupError


class TestScheduleGroupMeeting:
    def test_group_resolved_at_call_time(self, app):
        phil = app.node("phil")
        phil.directory.form_group("team", "phil", ["phil", "andy", "suzy"])
        m = app.manager("phil").schedule_group_meeting("team", "Weekly")
        assert m.status is MeetingStatus.CONFIRMED
        assert set(m.committed) == {"phil", "andy", "suzy"}

    def test_membership_changes_picked_up(self, app):
        phil = app.node("phil")
        phil.directory.form_group("team", "phil", ["phil", "andy"])
        m1 = app.manager("phil").schedule_group_meeting("team", "W1")
        assert set(m1.committed) == {"phil", "andy"}
        phil.directory.add_member("team", "raj")
        m2 = app.manager("phil").schedule_group_meeting("team", "W2")
        assert set(m2.committed) == {"phil", "andy", "raj"}

    def test_initiator_not_required_in_group(self, app):
        """A scheduler outside the group still attends (they initiate)."""
        phil = app.node("phil")
        phil.directory.form_group("others", "phil", ["andy", "suzy"])
        m = app.manager("phil").schedule_group_meeting("others", "X")
        assert "phil" in m.committed

    def test_unknown_group(self, app):
        with pytest.raises(UnknownGroupError):
            app.manager("phil").schedule_group_meeting("ghost-team", "X")

    def test_options_forwarded(self, app):
        phil = app.node("phil")
        phil.directory.form_group("team", "phil", ["phil", "andy"])
        m = app.manager("phil").schedule_group_meeting(
            "team", "X", day_from=2, day_to=3, priority=4
        )
        assert 2 <= m.slot["day"] <= 3
        assert m.priority == 4

    def test_cancel_group_meeting(self, app):
        phil = app.node("phil")
        phil.directory.form_group("team", "phil", ["phil", "andy", "suzy"])
        m = app.manager("phil").schedule_group_meeting("team", "W")
        app.manager("phil").cancel_meeting(m.meeting_id)
        for u in ["phil", "andy", "suzy"]:
            assert app.calendar(u).slot_of(m.slot)["status"] == "free"
