"""Tests for MeetingManager workflows (§4.4 / §5 scenarios)."""

import pytest

from repro.calendar.model import MeetingStatus, OrGroup
from tests.calendar.conftest import block_window
from repro.util.errors import (
    CalendarError,
    NotInitiatorError,
    SchedulingError,
)


class TestScheduleConfirmed:
    def test_basic_meeting(self, app):
        m = app.manager("phil").schedule_meeting("Budget", ["andy", "suzy"])
        assert m.status is MeetingStatus.CONFIRMED
        assert set(m.committed) == {"phil", "andy", "suzy"}
        for user in m.committed:
            row = app.calendar(user).slot_of(m.slot)
            assert row["status"] == "reserved"
            assert row["meeting_id"] == m.meeting_id
            assert app.meeting_view(user, m.meeting_id).status is MeetingStatus.CONFIRMED

    def test_earliest_common_slot_chosen(self, app):
        app.service("phil").block({"day": 0, "hour": 9})
        m = app.manager("phil").schedule_meeting("T", ["andy"], day_from=0, day_to=0)
        assert m.slot == {"day": 0, "hour": 10}

    def test_links_created(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy", "suzy"])
        fwd = app.node("phil").links.links_by_context("meeting_id", m.meeting_id)
        assert any(ln.context["role"] == "forward" for ln in fwd)
        back = app.node("andy").links.links_by_context("meeting_id", m.meeting_id)
        assert [ln.context["role"] for ln in back] == ["back"]

    def test_emails_sent(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"])
        inbox = app.mail.inbox("andy")
        assert len(inbox) == 1
        assert "confirmed" in inbox[0].subject

    def test_no_manual_intervention_required(self, app):
        """§6: scheduling requires zero human accept steps."""
        app.manager("phil").schedule_meeting("T", ["andy", "suzy", "raj"])
        assert app.mail.action_required == 0

    def test_preferred_slot(self, app):
        m = app.manager("phil").schedule_meeting(
            "T", ["andy"], preferred_slot={"day": 2, "hour": 14}
        )
        assert m.slot == {"day": 2, "hour": 14}

    def test_window_respected(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"], day_from=3, day_to=4)
        assert 3 <= m.slot["day"] <= 4

    def test_no_slot_raises(self, app):
        block_window(app, "phil", 0, 4)
        with pytest.raises(SchedulingError):
            app.manager("andy").schedule_meeting(
                "T", ["phil"], allow_tentative=False
            )

    def test_meeting_ids_unique(self, app):
        m1 = app.manager("phil").schedule_meeting("A", ["andy"])
        m2 = app.manager("phil").schedule_meeting("B", ["andy"])
        assert m1.meeting_id != m2.meeting_id


class TestScheduleTentative:
    def test_unavailable_participant_makes_tentative(self, app):
        block_window(app, "suzy", 0, 4)
        m = app.manager("phil").schedule_meeting("T", ["andy", "suzy"])
        assert m.status is MeetingStatus.TENTATIVE
        assert m.missing == ["suzy"]
        assert set(m.committed) == {"phil", "andy"}
        # Committed slots are held, not reserved.
        assert app.calendar("phil").slot_of(m.slot)["status"] == "held"
        assert app.calendar("andy").slot_of(m.slot)["status"] == "held"

    def test_tentative_link_queued_at_missing_user(self, app):
        block_window(app, "suzy", 0, 4)
        m = app.manager("phil").schedule_meeting("T", ["andy", "suzy"])
        links = app.node("suzy").links.links_by_context("meeting_id", m.meeting_id)
        assert len(links) == 1
        assert links[0].subtype.value == "tentative"
        assert links[0].refs[0].user == "phil"
        assert links[0].refs[0].on_change == "on_participant_available"

    def test_committed_get_subscription_back_links(self, app):
        block_window(app, "suzy", 0, 4)
        m = app.manager("phil").schedule_meeting("T", ["andy", "suzy"])
        back = app.node("andy").links.links_by_context("meeting_id", m.meeting_id)
        assert [ln.ltype.value for ln in back] == ["subscription"]

    def test_promotion_when_slot_frees(self, app):
        block_window(app, "suzy", 0, 4)
        m = app.manager("phil").schedule_meeting("T", ["andy", "suzy"])
        app.service("suzy").unblock(m.slot)
        now = app.meeting_view("phil", m.meeting_id)
        assert now.status is MeetingStatus.CONFIRMED
        assert now.missing == []
        assert app.calendar("suzy").slot_of(m.slot)["status"] == "reserved"
        assert app.calendar("phil").slot_of(m.slot)["status"] == "reserved"
        assert app.manager("phil").promotions == 1

    def test_promotion_upgrades_links(self, app):
        block_window(app, "suzy", 0, 4)
        m = app.manager("phil").schedule_meeting("T", ["andy", "suzy"])
        app.service("suzy").unblock(m.slot)
        suzy_links = app.node("suzy").links.links_by_context("meeting_id", m.meeting_id)
        assert [ln.context["role"] for ln in suzy_links] == ["back"]
        assert suzy_links[0].ltype.value == "negotiation"

    def test_unblocking_other_slot_does_not_promote(self, app):
        block_window(app, "suzy", 0, 4)
        m = app.manager("phil").schedule_meeting("T", ["andy", "suzy"])
        other = {"day": m.slot["day"], "hour": m.slot["hour"] + 1}
        app.service("suzy").unblock(other)
        assert app.meeting_view("phil", m.meeting_id).status is MeetingStatus.TENTATIVE

    def test_tentative_refusals_match_first_candidate(self, app):
        """Regression: the tentative fallback must use the refusal list
        recorded at the *first* failed slot, not the last one tried."""
        # suzy blocks the earliest slot only; raj blocks everything else
        # in the window, so candidate 1 fails on suzy and the later
        # candidates fail on raj.
        app.service("suzy").block({"day": 0, "hour": 9})
        for row in app.calendar("raj").free_slots(0, 0):
            if (row["day"], row["hour"]) != (0, 9):
                app.service("raj").block({"day": row["day"], "hour": row["hour"]})
        m = app.manager("phil").schedule_meeting(
            "T", ["andy", "suzy", "raj"], day_from=0, day_to=0
        )
        assert m.status is MeetingStatus.TENTATIVE
        assert m.slot == {"day": 0, "hour": 9}
        # suzy (the refusal at slot 1) is missing; raj committed there.
        assert m.missing == ["suzy"]
        assert "raj" in m.committed

    def test_disallow_tentative(self, app):
        block_window(app, "suzy", 0, 4)
        with pytest.raises(SchedulingError):
            app.manager("phil").schedule_meeting(
                "T", ["andy", "suzy"], allow_tentative=False
            )


class TestCancel:
    def test_cancel_releases_everywhere(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy", "suzy"])
        app.manager("phil").cancel_meeting(m.meeting_id)
        for user in ["phil", "andy", "suzy"]:
            assert app.calendar(user).slot_of(m.slot)["status"] == "free"
            assert app.meeting_view(user, m.meeting_id).status is MeetingStatus.CANCELLED

    def test_cancel_removes_links_everywhere(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy", "suzy"])
        app.manager("phil").cancel_meeting(m.meeting_id)
        for user in ["phil", "andy", "suzy"]:
            assert app.node(user).links.links_by_context("meeting_id", m.meeting_id) == []

    def test_only_initiator_cancels(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"])
        with pytest.raises(NotInitiatorError):
            app.manager("andy").cancel_meeting(m.meeting_id)

    def test_cancel_idempotent(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"])
        app.manager("phil").cancel_meeting(m.meeting_id)
        again = app.manager("phil").cancel_meeting(m.meeting_id)
        assert again.status is MeetingStatus.CANCELLED

    def test_cancel_promotes_waiting_tentative(self, app):
        """§4.4: cancellation automatically converts a tentative meeting."""
        m1 = app.manager("phil").schedule_meeting("First", ["andy"], day_from=0, day_to=0)
        m2 = app.manager("suzy").schedule_meeting(
            "Second", ["raj", "andy"], preferred_slot=m1.slot
        )
        assert m2.status is MeetingStatus.TENTATIVE
        app.manager("phil").cancel_meeting(m1.meeting_id)
        assert app.meeting_view("suzy", m2.meeting_id).status is MeetingStatus.CONFIRMED
        assert app.calendar("andy").slot_of(m1.slot)["meeting_id"] == m2.meeting_id

    def test_cancel_notifies_by_email(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"])
        app.manager("phil").cancel_meeting(m.meeting_id)
        subjects = [mail.subject for mail in app.mail.inbox("andy")]
        assert any("cancelled" in s for s in subjects)


class TestBump:
    def test_higher_priority_bumps(self, app):
        low = app.manager("phil").schedule_meeting("Low", ["andy"], priority=1,
                                                   day_from=0, day_to=0)
        high = app.manager("suzy").schedule_meeting(
            "High", ["andy"], priority=9, preferred_slot=low.slot
        )
        assert high.status is MeetingStatus.CONFIRMED
        assert app.calendar("andy").slot_of(low.slot)["meeting_id"] == high.meeting_id

    def test_equal_priority_does_not_bump(self, app):
        low = app.manager("phil").schedule_meeting("Low", ["andy"], priority=5,
                                                   day_from=0, day_to=0)
        m = app.manager("suzy").schedule_meeting(
            "Same", ["andy"], priority=5, preferred_slot=low.slot
        )
        # Falls back to tentative: andy's slot was not bumpable.
        assert m.status is MeetingStatus.TENTATIVE
        assert app.calendar("andy").slot_of(low.slot)["meeting_id"] == low.meeting_id

    def test_bumped_meeting_auto_reschedules(self, app):
        low = app.manager("phil").schedule_meeting("Low", ["andy"], priority=1,
                                                   day_from=0, day_to=1)
        app.manager("suzy").schedule_meeting(
            "High", ["andy"], priority=9, preferred_slot=low.slot
        )
        phil = app.manager("phil")
        assert app.meeting_view("phil", low.meeting_id).status is MeetingStatus.BUMPED
        new_id = phil.reschedule_map[low.meeting_id]
        new = app.meeting_view("phil", new_id)
        assert new.status is MeetingStatus.CONFIRMED
        assert new.slot != low.slot
        assert phil.reschedules == 1

    def test_bump_without_auto_reschedule(self, app):
        phil = app.manager("phil")
        phil.auto_reschedule = False
        low = phil.schedule_meeting("Low", ["andy"], priority=1, day_from=0, day_to=0)
        app.manager("suzy").schedule_meeting(
            "High", ["andy"], priority=9, preferred_slot=low.slot
        )
        assert app.meeting_view("phil", low.meeting_id).status is MeetingStatus.BUMPED
        assert phil.reschedule_map == {}
        # Phil's own copy of the slot was released.
        assert app.calendar("phil").slot_of(low.slot)["status"] == "free"


class TestOrGroups:
    def test_quorum_scheduling(self, app):
        for u in ["bio1", "bio2", "bio3", "bio4"]:
            app.add_user(u)
        m = app.manager("phil").schedule_meeting(
            "Faculty",
            ["andy", "bio1", "bio2", "bio3", "bio4"],
            must_attend=["andy"],
            or_groups=[OrGroup(("bio1", "bio2", "bio3", "bio4"), 2)],
        )
        assert m.status is MeetingStatus.CONFIRMED
        bio_committed = [u for u in m.committed if u.startswith("bio")]
        assert len(bio_committed) >= 2

    def test_quorum_not_met_goes_tentative(self, app):
        for u in ["bio1", "bio2"]:
            app.add_user(u)
            block_window(app, u, 0, 4)
        m = app.manager("phil").schedule_meeting(
            "Faculty",
            ["andy", "bio1", "bio2"],
            must_attend=["andy"],
            or_groups=[OrGroup(("bio1", "bio2"), 1)],
        )
        assert m.status is MeetingStatus.TENTATIVE
        assert set(m.missing) == {"bio1", "bio2"}


class TestDropOut:
    def test_must_attendee_drop_makes_tentative(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy", "suzy"])
        assert app.manager("andy").drop_out(m.meeting_id) is True
        now = app.meeting_view("phil", m.meeting_id)
        assert now.status is MeetingStatus.TENTATIVE
        assert now.missing == ["andy"]
        assert app.calendar("andy").slot_of(m.slot)["status"] == "free"
        # A tentative back link waits at andy for re-commitment.
        links = app.node("andy").links.links_by_context("meeting_id", m.meeting_id)
        assert any(ln.subtype.value == "tentative" for ln in links)

    def test_initiator_cannot_drop_out(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"])
        with pytest.raises(CalendarError):
            app.manager("phil").drop_out(m.meeting_id)

    def test_or_group_drop_with_quorum_held(self, app):
        for u in ["b1", "b2", "b3"]:
            app.add_user(u)
        m = app.manager("phil").schedule_meeting(
            "T", ["b1", "b2", "b3"], or_groups=[OrGroup(("b1", "b2", "b3"), 2)]
        )
        committed_bios = [u for u in m.committed if u.startswith("b")]
        assert len(committed_bios) == 3
        assert app.manager("b1").drop_out(m.meeting_id) is True
        now = app.meeting_view("phil", m.meeting_id)
        assert "b1" not in now.committed
        assert now.status is MeetingStatus.CONFIRMED

    def test_or_group_drop_denied_when_quorum_breaks(self, app):
        for u in ["b1", "b2"]:
            app.add_user(u)
        m = app.manager("phil").schedule_meeting(
            "T", ["b1", "b2"], or_groups=[OrGroup(("b1", "b2"), 2)]
        )
        # Both committed, k=2: no replacement possible -> denied.
        assert app.manager("b1").drop_out(m.meeting_id) is False
        assert app.calendar("b1").slot_of(m.slot)["status"] == "reserved"

    def test_or_group_drop_with_replacement(self, app):
        for u in ["b1", "b2", "b3"]:
            app.add_user(u)
        # b3 initially unavailable at the chosen slot window start.
        block_window(app, "b3", 0, 0)
        m = app.manager("phil").schedule_meeting(
            "T",
            ["b1", "b2", "b3"],
            or_groups=[OrGroup(("b1", "b2", "b3"), 2)],
            day_from=0,
            day_to=0,
        )
        committed_bios = {u for u in m.committed if u.startswith("b")}
        assert committed_bios == {"b1", "b2"}
        # Free b3 so a replacement exists, then b1 leaves.
        app.service("b3").unblock(m.slot)
        assert app.manager("b1").drop_out(m.meeting_id) is True
        now = app.meeting_view("phil", m.meeting_id)
        assert "b3" in now.committed and "b1" not in now.committed


class TestSupervisor:
    def test_supervisor_gets_subscription_back_link(self, app):
        m = app.manager("phil").schedule_meeting(
            "T", ["andy", "suzy"], supervisors=["suzy"]
        )
        assert m.status is MeetingStatus.CONFIRMED
        links = app.node("suzy").links.links_by_context("meeting_id", m.meeting_id)
        assert [ln.ltype.value for ln in links] == ["subscription"]
        assert links[0].refs[0].on_change == "on_supervisor_changed"

    def test_supervisor_change_degrades_meeting(self, app):
        m = app.manager("phil").schedule_meeting(
            "T", ["andy", "suzy"], supervisors=["suzy"]
        )
        # Supervisor frees their slot at will (release fires subscription).
        app.service("suzy").withdraw_slot(m.slot, m.meeting_id)
        now = app.meeting_view("phil", m.meeting_id)
        assert now.status is MeetingStatus.TENTATIVE
        assert "suzy" in now.missing

    def test_supervisor_rebooking_promotes_again(self, app):
        m = app.manager("phil").schedule_meeting(
            "T", ["andy", "suzy"], supervisors=["suzy"]
        )
        app.service("suzy").withdraw_slot(m.slot, m.meeting_id)
        # The degrade queued a tentative link at suzy; freeing again fires it.
        assert app.meeting_view("phil", m.meeting_id).status is MeetingStatus.TENTATIVE
        # suzy's slot is already free; the tentative link fires on the
        # next availability change; simulate by re-running fire.
        app.service("suzy")._fire_availability(m.slot)
        assert app.meeting_view("phil", m.meeting_id).status is MeetingStatus.CONFIRMED
