"""Tests for CalendarService verbs (queries, negotiation, callbacks)."""

import pytest

from repro.calendar.model import SlotStatus
from repro.util.errors import CalendarError, LockNotHeldError, SlotUnavailableError

SLOT = {"day": 0, "hour": 9}


class TestQueries:
    def test_query_free_slots(self, app):
        slots = app.service("phil").query_free_slots(0, 0)
        assert slots[0] == {"day": 0, "hour": 9}
        assert len(slots) == 8  # 9..16

    def test_get_slot(self, app):
        row = app.service("phil").get_slot(SLOT)
        assert row["status"] == "free"

    def test_remote_query_through_engine(self, app):
        slots = app.node("andy").engine.execute(
            "phil", "calendar", "query_free_slots", 0, 0
        )
        assert len(slots) == 8

    def test_get_meeting_absent(self, app):
        assert app.service("phil").get_meeting("nope") is None

    def test_list_meetings(self, app):
        m = app.manager("phil").schedule_meeting("T", ["andy"])
        rows = app.service("phil").list_meetings()
        assert [r["meeting_id"] for r in rows] == [m.meeting_id]
        assert app.service("phil").list_meetings("confirmed")[0]["title"] == "T"
        assert app.service("phil").list_meetings("cancelled") == []


class TestBlockUnblock:
    def test_block_marks_busy(self, app):
        app.service("phil").block(SLOT, note="dentist")
        row = app.service("phil").get_slot(SLOT)
        assert row["status"] == "busy"
        assert row["note"] == "dentist"

    def test_block_non_free_rejected(self, app):
        app.service("phil").block(SLOT)
        with pytest.raises(SlotUnavailableError):
            app.service("phil").block(SLOT)

    def test_unblock_frees(self, app):
        app.service("phil").block(SLOT)
        app.service("phil").unblock(SLOT)
        assert app.service("phil").get_slot(SLOT)["status"] == "free"

    def test_unblock_requires_busy(self, app):
        with pytest.raises(CalendarError):
            app.service("phil").unblock(SLOT)


class TestNegotiationVerbs:
    def test_mark_free_slot(self, app):
        svc = app.service("phil")
        assert svc.mark(SLOT, "t1") is True
        assert app.node("phil").locks.holder("d0h9") == "t1"

    def test_mark_busy_slot_refused(self, app):
        svc = app.service("phil")
        svc.block(SLOT)
        assert svc.mark(SLOT, "t1") is False

    def test_mark_locked_slot_refused(self, app):
        svc = app.service("phil")
        svc.mark(SLOT, "t1")
        assert svc.mark(SLOT, "t2") is False

    def test_mark_same_meeting_reentry(self, app):
        svc = app.service("phil")
        svc.mark(SLOT, "t1")
        svc.change(SLOT, "t1", {"meeting_id": "m1", "status": "held", "priority": 0})
        svc.unmark(SLOT, "t1")
        # Upgrade path: same meeting can re-mark its held slot.
        assert svc.mark(SLOT, "t2", None, "m1") is True
        # Different meeting without priority cannot.
        assert svc.mark(SLOT, "t3", None, "m2") is False

    def test_mark_bump_priority(self, app):
        svc = app.service("phil")
        svc.mark(SLOT, "t1")
        svc.change(SLOT, "t1", {"meeting_id": "m1", "status": "reserved", "priority": 2})
        svc.unmark(SLOT, "t1")
        assert svc.mark(SLOT, "t2", 2, "m2") is False   # equal priority: no
        assert svc.mark(SLOT, "t2", 3, "m2") is True    # higher: bump ok

    def test_mark_unknown_slot(self, app):
        assert app.service("phil").mark({"day": 99, "hour": 9}, "t1") is False

    def test_change_requires_lock(self, app):
        with pytest.raises(LockNotHeldError):
            app.service("phil").change(SLOT, "t1", {"meeting_id": "m", "status": "held"})

    def test_unmark_releases_and_is_idempotent(self, app):
        svc = app.service("phil")
        svc.mark(SLOT, "t1")
        assert svc.unmark(SLOT, "t1") is True
        assert svc.unmark(SLOT, "t1") is False


class TestReleaseSlot:
    def test_release_matching_meeting(self, app):
        svc = app.service("phil")
        svc.mark(SLOT, "t1")
        svc.change(SLOT, "t1", {"meeting_id": "m1", "status": "reserved"})
        svc.unmark(SLOT, "t1")
        assert svc.release_slot(SLOT, "m1") is True
        assert svc.get_slot(SLOT)["status"] == "free"

    def test_release_wrong_meeting_refused(self, app):
        svc = app.service("phil")
        svc.mark(SLOT, "t1")
        svc.change(SLOT, "t1", {"meeting_id": "m1", "status": "reserved"})
        svc.unmark(SLOT, "t1")
        assert svc.release_slot(SLOT, "other") is False


class TestCallbacks:
    def test_on_participant_available_publishes(self, app):
        seen = []
        app.node("phil").events.on_local(
            "calendar.participant_available", lambda t, p: seen.append(p)
        )
        app.service("phil").on_participant_available(
            SLOT, {"meeting_id": "zz-unknown", "user": "suzy"}
        )
        assert seen[0]["user"] == "suzy"

    def test_on_peer_change_publishes(self, app):
        seen = []
        app.node("phil").events.on_local("calendar.peer_changed", lambda t, p: seen.append(p))
        app.service("phil").on_peer_change(SLOT, {"user": "andy"})
        assert seen[0]["user"] == "andy"

    def test_request_drop_out_requires_manager(self, app):
        svc = app.service("phil")
        svc.manager = None
        with pytest.raises(CalendarError):
            svc.request_drop_out("m", "andy")
