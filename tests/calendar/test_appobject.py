"""Tests for the Calendars SyDAppO (§3.2)."""

import pytest

from repro.calendar.appobject import CommitteeCalendars, appo_name
from repro.calendar.model import MeetingStatus
from repro.util.errors import CalendarError


@pytest.fixture
def committee(app):
    return CommitteeCalendars(app.manager("phil"), ["phil", "andy", "suzy"])


def test_paper_naming_convention(committee):
    assert committee.name == "Calendars_of_phil+andy+suzy_SyDAppO"
    assert appo_name(["a", "b"]) == "Calendars_of_a+b_SyDAppO"


def test_host_must_be_member(app):
    with pytest.raises(CalendarError):
        CommitteeCalendars(app.manager("phil"), ["andy", "suzy"])


def test_find_earliest_meeting_time(app, committee):
    assert committee.find_earliest_meeting_time() == {"day": 0, "hour": 9}
    app.service("andy").block({"day": 0, "hour": 9})
    assert committee.find_earliest_meeting_time() == {"day": 0, "hour": 10}


def test_find_earliest_none_when_impossible(app, committee):
    for row in app.calendar("suzy").free_slots(0, 4):
        app.service("suzy").block({"day": row["day"], "hour": row["hour"]})
    assert committee.find_earliest_meeting_time() is None


def test_schedule_earliest(app, committee):
    meeting = committee.schedule("Standup")
    assert meeting.status is MeetingStatus.CONFIRMED
    assert set(meeting.committed) == {"phil", "andy", "suzy"}
    assert meeting.slot == {"day": 0, "hour": 9}


def test_change_meeting_time_to_next_available(app, committee):
    meeting = committee.schedule("Standup")
    new_slot = committee.change_meeting_time_to_next_available(meeting.meeting_id)
    assert new_slot == {"day": 0, "hour": 10}
    assert app.meeting_view("andy", meeting.meeting_id).slot == new_slot


def test_change_time_returns_none_when_stuck(app, committee):
    meeting = committee.schedule("Standup")
    # Block every later slot for suzy.
    for row in app.calendar("suzy").free_slots(0, 4):
        app.service("suzy").block({"day": row["day"], "hour": row["hour"]})
    assert committee.change_meeting_time_to_next_available(meeting.meeting_id) is None
    assert app.meeting_view("phil", meeting.meeting_id).slot == meeting.slot


def test_committee_load(app, committee):
    app.service("andy").block({"day": 0, "hour": 9})
    load = committee.committee_load(0, 0)
    assert load["phil"] == 0.0
    assert load["andy"] == pytest.approx(1 / 8)


def test_appo_publishable_and_remotely_invocable(app, committee):
    """The SyDAppO is itself a device object: publish it and invoke its
    methods through the kernel like any service."""
    node = app.node("phil")
    node.listener.publish_object(committee, user_id="phil", service="committee")
    slot = app.node("andy").engine.execute(
        "phil", "committee", "find_earliest_meeting_time", 0, 2
    )
    assert slot == {"day": 0, "hour": 9}
