"""Tests for the SyDCalendarApp facade."""

import pytest

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp
from repro.util.errors import ReproError


@pytest.fixture
def facade():
    return SyDCalendarApp(SyDWorld(seed=97), days=3, day_start=10, day_end=13)


class TestFacade:
    def test_custom_calendar_shape(self, facade):
        facade.add_user("a")
        assert facade.calendar("a").store.count("slots") == 9
        assert facade.calendar("a").day_start == 10

    def test_accessors_agree(self, facade):
        entry = facade.add_user("a")
        assert facade.manager("a") is entry.manager
        assert facade.calendar("a") is entry.calendar
        assert facade.service("a") is entry.service
        assert facade.node("a") is entry.node

    def test_unknown_user_raises(self, facade):
        with pytest.raises(ReproError, match="no calendar user"):
            facade.manager("ghost")

    def test_meeting_view_none_for_unknown(self, facade):
        facade.add_user("a")
        assert facade.meeting_view("a", "nope") is None

    def test_total_storage_covers_all_users(self, facade):
        facade.add_user("a")
        facade.add_user("b")
        storage = facade.total_storage_bytes()
        assert set(storage) == {"a", "b"}
        assert all(v > 0 for v in storage.values())

    def test_link_expiry_sweep_wired(self):
        app = SyDCalendarApp(SyDWorld(seed=98), link_expiry_sweep=30.0)
        node = app.add_user("a").node
        world = app.world
        from repro.kernel.linktypes import LinkRef, LinkType
        from repro.txn.coordinator import AND

        app.add_user("b")
        node.links.create_link(
            LinkType.NEGOTIATION,
            [LinkRef("b", "x", "calendar")],
            constraint=AND,
            ttl=10.0,
        )
        world.run_for(45.0)
        assert node.links.all_links() == []
        assert node.links.expired == 1

    def test_service_registered_in_directory(self, facade):
        facade.add_user("a")
        svc = facade.node("a").directory.lookup_service("a", "calendar")
        assert svc["object_name"] == "a_calendar_SyD"
        assert "query_free_slots" in svc["methods"]
        assert "mark" in svc["methods"]

    def test_mixed_auth_and_plain_worlds(self):
        app = SyDCalendarApp(SyDWorld(seed=99, auth_passphrase="s"))
        a = app.add_user("a", password="pa")
        b = app.add_user("b", password="pb")
        a.node.auth_table.grant("b", "pb")
        b.node.auth_table.grant("a", "pa")
        m = app.manager("a").schedule_meeting("t", ["b"])
        assert m.status.value == "confirmed"
