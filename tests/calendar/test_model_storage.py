"""Tests for the calendar model and per-user storage."""

import pytest

from repro.calendar.model import (
    Meeting,
    MeetingStatus,
    OrGroup,
    SlotStatus,
    entity_to_id,
    parse_slot_id,
    slot_entity,
    slot_id,
)
from repro.calendar.storage import CalendarStore
from repro.datastore.store import RelationalStore
from repro.util.errors import CalendarError


class TestSlotIds:
    def test_roundtrip(self):
        assert parse_slot_id(slot_id(3, 14)) == {"day": 3, "hour": 14}

    def test_entity_to_id(self):
        assert entity_to_id(slot_entity(2, 9)) == "d2h9"

    def test_malformed(self):
        with pytest.raises(CalendarError):
            parse_slot_id("banana")


class TestOrGroup:
    def test_valid(self):
        g = OrGroup(("a", "b", "c"), 2)
        assert OrGroup.from_dict(g.to_dict()) == g

    def test_k_bounds(self):
        with pytest.raises(CalendarError):
            OrGroup(("a",), 0)
        with pytest.raises(CalendarError):
            OrGroup(("a",), 2)


class TestMeetingRow:
    def test_roundtrip(self):
        m = Meeting(
            meeting_id="m1",
            initiator="phil",
            title="Budget",
            slot={"day": 0, "hour": 9},
            participants=["phil", "andy"],
            must_attend=["phil", "andy"],
            or_groups=[OrGroup(("x", "y"), 1)],
            supervisors=["boss"],
            priority=3,
            status=MeetingStatus.TENTATIVE,
            committed=["phil"],
            missing=["andy"],
            window=(0, 4),
            created_at=1.5,
        )
        assert Meeting.from_row(m.to_row()) == m


@pytest.fixture
def cal():
    return CalendarStore(RelationalStore("phil"), days=3, day_start=9, day_end=12)


class TestCalendarStore:
    def test_slots_created(self, cal):
        assert cal.store.count("slots") == 9
        assert cal.slot("d0h9")["status"] == "free"

    def test_bad_hours_rejected(self):
        with pytest.raises(CalendarError):
            CalendarStore(RelationalStore("x"), day_start=12, day_end=9)

    def test_free_slots_window_and_order(self, cal):
        cal.set_slot("d0h10", SlotStatus.BUSY)
        rows = cal.free_slots(0, 1)
        assert [(r["day"], r["hour"]) for r in rows] == [
            (0, 9), (0, 11), (1, 9), (1, 10), (1, 11),
        ]

    def test_set_and_release_slot(self, cal):
        cal.set_slot("d0h9", SlotStatus.RESERVED, meeting_id="m1", priority=2)
        row = cal.slot("d0h9")
        assert row["status"] == "reserved" and row["meeting_id"] == "m1"
        cal.release_slot("d0h9")
        assert cal.slot("d0h9")["status"] == "free"

    def test_unknown_slot(self, cal):
        with pytest.raises(CalendarError):
            cal.slot("d9h9")
        with pytest.raises(CalendarError):
            cal.set_slot("d9h9", SlotStatus.FREE)

    def test_slots_of_meeting(self, cal):
        cal.set_slot("d0h9", SlotStatus.RESERVED, meeting_id="m1")
        cal.set_slot("d1h9", SlotStatus.RESERVED, meeting_id="m1")
        assert len(cal.slots_of_meeting("m1")) == 2

    def test_occupancy(self, cal):
        assert cal.occupancy() == 0.0
        cal.set_slot("d0h9", SlotStatus.BUSY)
        assert cal.occupancy() == pytest.approx(1 / 9)

    def test_meeting_crud(self, cal):
        m = Meeting(
            meeting_id="m1",
            initiator="phil",
            title="t",
            slot={"day": 0, "hour": 9},
            participants=["phil"],
            must_attend=["phil"],
        )
        cal.put_meeting(m)
        assert cal.has_meeting("m1")
        assert cal.meeting("m1").title == "t"
        m.title = "t2"
        cal.put_meeting(m)  # upsert
        assert cal.meeting("m1").title == "t2"
        cal.set_meeting_status("m1", MeetingStatus.CANCELLED)
        assert cal.meeting("m1").status is MeetingStatus.CANCELLED
        assert cal.meetings(MeetingStatus.CANCELLED)[0].meeting_id == "m1"

    def test_unknown_meeting(self, cal):
        with pytest.raises(CalendarError):
            cal.meeting("nope")
        with pytest.raises(CalendarError):
            cal.set_meeting_status("nope", MeetingStatus.CANCELLED)

    def test_existing_tables_reused(self, cal):
        again = CalendarStore(cal.store, days=3, day_start=9, day_end=12)
        assert again.store.count("slots") == 9
