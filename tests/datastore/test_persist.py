"""Tests for disk persistence (checkpoint + WAL)."""

import os

import pytest

from repro.datastore.flatfile import FlatFileStore
from repro.datastore.persist import DurableStore, load_store, save_store
from repro.datastore.predicate import where
from repro.datastore.schema import ColumnType, schema
from repro.datastore.store import RelationalStore
from repro.util.errors import StoreError


def make_store(name="s"):
    s = RelationalStore(name)
    s.create_table("t", schema("id", id=ColumnType.INT, v=ColumnType.STR))
    s.insert("t", {"id": 1, "v": "a"})
    s.insert("t", {"id": 2, "v": "b"})
    return s


class TestSnapshotFiles:
    def test_save_load_roundtrip(self, tmp_path):
        src = make_store()
        path = str(tmp_path / "snap.json")
        n = save_store(src, path)
        assert n > 0 and os.path.exists(path)
        back = load_store(path)
        assert back.select("t") == src.select("t")
        assert back.name == "s"

    def test_load_into_other_store_kind(self, tmp_path):
        path = str(tmp_path / "snap.json")
        save_store(make_store(), path)
        back = load_store(path, FlatFileStore, name="flat")
        assert back.kind == "flatfile"
        assert back.get("t", 1)["v"] == "a"

    def test_bad_format_rejected(self, tmp_path):
        path = str(tmp_path / "snap.json")
        path_obj = tmp_path / "snap.json"
        path_obj.write_text('{"format": 99, "snapshot": {}}')
        with pytest.raises(StoreError):
            load_store(path)

    def test_save_is_atomic(self, tmp_path):
        path = str(tmp_path / "snap.json")
        save_store(make_store(), path)
        assert not os.path.exists(path + ".tmp")


class TestDurableStore:
    def test_recover_from_checkpoint_plus_wal(self, tmp_path):
        store = make_store()
        durable = DurableStore(store, str(tmp_path))
        durable.checkpoint()
        # Post-checkpoint mutations land in the WAL.
        store.insert("t", {"id": 3, "v": "c"})
        store.update("t", where("id") == 1, {"v": "a2"})
        store.delete("t", where("id") == 2)

        recovered = DurableStore.recover(str(tmp_path))
        assert recovered.select("t") == store.select("t")

    def test_recover_without_checkpoint_fails(self, tmp_path):
        with pytest.raises(StoreError, match="no checkpoint"):
            DurableStore.recover(str(tmp_path))

    def test_checkpoint_truncates_wal(self, tmp_path):
        store = make_store()
        durable = DurableStore(store, str(tmp_path))
        store.insert("t", {"id": 3, "v": "c"})
        assert os.path.getsize(durable.wal_path) > 0
        durable.checkpoint()
        assert os.path.getsize(durable.wal_path) == 0
        recovered = DurableStore.recover(str(tmp_path))
        assert recovered.count("t") == 3

    def test_auto_checkpoint_every_n(self, tmp_path):
        store = make_store()
        durable = DurableStore(store, str(tmp_path), checkpoint_every=2)
        store.insert("t", {"id": 3, "v": "c"})
        store.insert("t", {"id": 4, "v": "d"})  # triggers checkpoint
        assert os.path.exists(durable.checkpoint_path)
        assert os.path.getsize(durable.wal_path) == 0

    def test_close_stops_journaling(self, tmp_path):
        store = make_store()
        durable = DurableStore(store, str(tmp_path))
        durable.close()
        store.insert("t", {"id": 3, "v": "c"})
        assert len(durable.journal) == 0

    def test_wal_only_recovery_equivalence(self, tmp_path):
        """Many mutations, no manual checkpoints: recovery still exact."""
        store = make_store()
        DurableStore(store, str(tmp_path)).checkpoint()
        durable = DurableStore.recover(str(tmp_path))
        # Re-wrap the recovered store and mutate a lot.
        d2_dir = str(tmp_path / "second")
        d2 = DurableStore(durable, d2_dir)
        d2.checkpoint()
        for i in range(10, 40):
            durable.insert("t", {"id": i, "v": f"v{i}"})
        recovered = DurableStore.recover(d2_dir)
        assert recovered.select("t") == durable.select("t")
