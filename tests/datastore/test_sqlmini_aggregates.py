"""Tests for mini-SQL aggregate functions."""

import pytest

from repro.datastore.schema import Column, ColumnType, schema
from repro.datastore.store import RelationalStore
from repro.util.errors import SqlSyntaxError


@pytest.fixture
def store():
    s = RelationalStore("agg")
    s.create_table(
        "slots",
        schema(
            "id",
            id=ColumnType.INT,
            hour=ColumnType.INT,
            status=ColumnType.STR,
            load=Column("", ColumnType.FLOAT, nullable=True),
        ),
    )
    rows = [
        (0, 9, "free", 0.5),
        (1, 10, "busy", 1.5),
        (2, 11, "free", None),
        (3, 12, "busy", 2.0),
    ]
    for i, h, st, ld in rows:
        s.insert("slots", {"id": i, "hour": h, "status": st, "load": ld})
    return s


def test_count_star(store):
    assert store.sql("SELECT COUNT(*) FROM slots") == 4
    assert store.sql("SELECT COUNT(*) FROM slots WHERE status = 'free'") == 2


def test_count_column_skips_nulls(store):
    assert store.sql("SELECT COUNT(load) FROM slots") == 3


def test_min_max(store):
    assert store.sql("SELECT MIN(hour) FROM slots") == 9
    assert store.sql("SELECT MAX(hour) FROM slots WHERE status = 'free'") == 11


def test_sum_avg(store):
    assert store.sql("SELECT SUM(load) FROM slots") == pytest.approx(4.0)
    assert store.sql("SELECT AVG(load) FROM slots") == pytest.approx(4.0 / 3)


def test_aggregate_over_empty_set(store):
    assert store.sql("SELECT MIN(hour) FROM slots WHERE hour > 99") is None
    assert store.sql("SELECT COUNT(*) FROM slots WHERE hour > 99") == 0


def test_case_insensitive_fn(store):
    assert store.sql("SELECT count(*) FROM slots") == 4


def test_star_only_for_count(store):
    with pytest.raises(SqlSyntaxError):
        store.sql("SELECT MAX(*) FROM slots")


def test_no_order_by_with_aggregate(store):
    with pytest.raises(SqlSyntaxError):
        store.sql("SELECT COUNT(*) FROM slots ORDER BY hour")
    with pytest.raises(SqlSyntaxError):
        store.sql("SELECT COUNT(*) FROM slots LIMIT 1")


def test_count_as_plain_identifier_still_works(store):
    """A column named 'count' (no parenthesis) must not trip the parser."""
    s = RelationalStore("c")
    s.create_table("t", schema("count", count=ColumnType.INT))
    s.insert("t", {"count": 5})
    assert s.sql("SELECT count FROM t") == [{"count": 5}]
