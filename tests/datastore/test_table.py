"""Tests for the table engine."""

import pytest

from repro.datastore.predicate import where
from repro.datastore.schema import Column, ColumnType, schema
from repro.datastore.table import Table
from repro.util.errors import DuplicateKeyError, QueryError, SchemaError


def make_table():
    t = Table(
        "slots",
        schema(
            "slot_id",
            slot_id=ColumnType.INT,
            status=ColumnType.STR,
            hour=ColumnType.INT,
            owner=Column("", ColumnType.STR, nullable=True),
        ),
    )
    for i, (status, hour) in enumerate(
        [("free", 9), ("busy", 10), ("free", 11), ("busy", 9)]
    ):
        t.insert({"slot_id": i, "status": status, "hour": hour})
    return t


class TestInsert:
    def test_insert_and_get(self):
        t = make_table()
        assert t.get(0)["status"] == "free"

    def test_insert_returns_copy(self):
        t = make_table()
        row = t.insert({"slot_id": 99, "status": "free", "hour": 1})
        row["status"] = "mutated"
        assert t.get(99)["status"] == "free"

    def test_get_returns_copy(self):
        t = make_table()
        t.get(0)["status"] = "mutated"
        assert t.get(0)["status"] == "free"

    def test_duplicate_pk_rejected(self):
        t = make_table()
        with pytest.raises(DuplicateKeyError):
            t.insert({"slot_id": 0, "status": "free", "hour": 1})

    def test_len(self):
        assert len(make_table()) == 4


class TestSelect:
    def test_select_all_ordered_by_pk(self):
        rows = make_table().select()
        assert [r["slot_id"] for r in rows] == [0, 1, 2, 3]

    def test_select_with_predicate(self):
        rows = make_table().select(where("status") == "free")
        assert {r["slot_id"] for r in rows} == {0, 2}

    def test_order_by_and_desc(self):
        rows = make_table().select(order_by="hour", descending=True)
        assert [r["hour"] for r in rows] == [11, 10, 9, 9]

    def test_limit(self):
        assert len(make_table().select(limit=2)) == 2
        assert make_table().select(limit=0) == []

    def test_projection(self):
        rows = make_table().select(columns=["slot_id", "hour"])
        assert set(rows[0]) == {"slot_id", "hour"}

    def test_projection_unknown_column(self):
        with pytest.raises(SchemaError):
            make_table().select(columns=["nope"])

    def test_order_by_unknown_column(self):
        with pytest.raises(QueryError):
            make_table().select(order_by="nope")

    def test_count(self):
        t = make_table()
        assert t.count() == 4
        assert t.count(where("hour") == 9) == 2


class TestUpdateDelete:
    def test_update_returns_old_new_pairs(self):
        t = make_table()
        pairs = t.update_rows(where("status") == "free", {"status": "reserved"})
        assert len(pairs) == 2
        assert all(old["status"] == "free" and new["status"] == "reserved" for old, new in pairs)
        assert t.count(where("status") == "reserved") == 2

    def test_update_validates_types(self):
        t = make_table()
        with pytest.raises(SchemaError):
            t.update_rows(None, {"hour": "ten"})

    def test_empty_changes_noop(self):
        assert make_table().update_rows(None, {}) == []

    def test_delete(self):
        t = make_table()
        removed = t.delete_rows(where("status") == "busy")
        assert len(removed) == 2
        assert len(t) == 2

    def test_delete_all_with_none(self):
        t = make_table()
        t.delete_rows(None)
        assert len(t) == 0


class TestIndexes:
    def test_index_served_lookup(self):
        t = make_table()
        t.create_index("status")
        assert {r["slot_id"] for r in t.select(where("status") == "free")} == {0, 2}

    def test_index_stays_consistent_after_update(self):
        t = make_table()
        t.create_index("status")
        t.update_rows(where("slot_id") == 0, {"status": "busy"})
        assert {r["slot_id"] for r in t.select(where("status") == "busy")} == {0, 1, 3}
        assert {r["slot_id"] for r in t.select(where("status") == "free")} == {2}

    def test_index_stays_consistent_after_delete(self):
        t = make_table()
        t.create_index("hour")
        t.delete_rows(where("slot_id") == 0)
        assert {r["slot_id"] for r in t.select(where("hour") == 9)} == {3}

    def test_index_on_unknown_column(self):
        with pytest.raises(SchemaError):
            make_table().create_index("nope")

    def test_pk_equality_fast_path(self):
        t = make_table()
        rows = t.select(where("slot_id") == 2)
        assert len(rows) == 1 and rows[0]["hour"] == 11

    def test_pk_equality_missing(self):
        assert make_table().select(where("slot_id") == 777) == []

    def test_index_and_extra_predicate(self):
        t = make_table()
        t.create_index("status")
        rows = t.select((where("status") == "free") & (where("hour") > 9))
        assert [r["slot_id"] for r in rows] == [2]

    def test_indexed_columns_listed(self):
        t = make_table()
        t.create_index("status")
        assert t.indexed_columns() == ["status"]


def test_storage_bytes_positive_and_grows():
    t = make_table()
    before = t.storage_bytes()
    t.insert({"slot_id": 50, "status": "free", "hour": 9, "owner": "someone"})
    assert t.storage_bytes() > before > 0
