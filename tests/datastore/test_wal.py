"""Tests for the change journal."""

import pytest

from repro.datastore.predicate import where
from repro.datastore.schema import ColumnType, schema
from repro.datastore.store import RelationalStore
from repro.datastore.wal import ChangeJournal, JournalEntry, attach_journal, replay
from repro.util.errors import StoreError


def make_store(name="s"):
    s = RelationalStore(name)
    s.create_table("t", schema("id", id=ColumnType.INT, v=ColumnType.STR))
    return s


def test_append_assigns_increasing_seq():
    j = ChangeJournal()
    e1 = j.append("insert", "t", 1, {"id": 1})
    e2 = j.append("delete", "t", 1, {"id": 1})
    assert (e1.seq, e2.seq) == (1, 2)
    assert j.last_seq() == 2
    assert len(j) == 2


def test_entries_since():
    j = ChangeJournal()
    for i in range(5):
        j.append("insert", "t", i, {"id": i})
    assert [e.pk for e in j.entries(since_seq=3)] == [3, 4]


def test_serialize_roundtrip():
    j = ChangeJournal()
    j.append("insert", "t", 1, {"id": 1, "v": "x"})
    j.append("update", "t", 1, {"id": 1, "v": "y"})
    j2 = ChangeJournal.deserialize(j.serialize())
    assert j2.last_seq() == 2
    assert j2.entries() == j.entries()


def test_journal_entry_json_roundtrip():
    e = JournalEntry(3, "update", "t", 7, {"id": 7, "v": "z"})
    assert JournalEntry.from_json(e.to_json()) == e


def test_attach_journal_records_all_mutations():
    store = make_store()
    journal = ChangeJournal()
    attach_journal(store, journal)
    store.insert("t", {"id": 1, "v": "a"})
    store.update("t", where("id") == 1, {"v": "b"})
    store.delete("t", where("id") == 1)
    ops = [e.op for e in journal.entries()]
    assert ops == ["insert", "update", "delete"]
    assert journal.entries()[2].row["v"] == "b"  # delete records the old row


def test_detach_stops_recording():
    store = make_store()
    journal = ChangeJournal()
    detach = attach_journal(store, journal)
    detach()
    store.insert("t", {"id": 1, "v": "a"})
    assert len(journal) == 0


def test_replay_reconstructs_state():
    src = make_store("src")
    journal = ChangeJournal()
    attach_journal(src, journal)
    src.insert("t", {"id": 1, "v": "a"})
    src.insert("t", {"id": 2, "v": "b"})
    src.update("t", where("id") == 1, {"v": "a2"})
    src.delete("t", where("id") == 2)

    dst = make_store("dst")
    applied = replay(journal, dst)
    assert applied == 4
    assert dst.select("t") == src.select("t")


def test_replay_since_seq():
    src = make_store("src")
    journal = ChangeJournal()
    attach_journal(src, journal)
    src.insert("t", {"id": 1, "v": "a"})
    checkpoint = journal.last_seq()
    src.insert("t", {"id": 2, "v": "b"})

    dst = make_store("dst")
    dst.insert("t", {"id": 1, "v": "a"})  # state as of checkpoint
    assert replay(journal, dst, since_seq=checkpoint) == 1
    assert dst.select("t") == src.select("t")


def test_replay_update_of_missing_row_fails():
    j = ChangeJournal()
    j.append("update", "t", 1, {"id": 1, "v": "x"})
    with pytest.raises(StoreError, match="replay update"):
        replay(j, make_store())
