"""Seeded generative tests for the predicate/sqlmini round trip.

Complements the hypothesis suite in ``test_predicate_sql_roundtrip.py``
with a plain-``random`` generator (no external shrinking machinery, and
usable as an idiom where hypothesis is unavailable) and two properties
the hypothesis suite does not cover:

* ``to_sql`` is a *fixed point* through the parser — reparsing the SQL
  and printing it again yields byte-identical SQL, and
* ``RelationalStore.select`` agrees between a predicate object and the
  same predicate round-tripped through SQL text.
"""

import random

import pytest

from repro.datastore.predicate import ALWAYS, Cmp, In, IsNull, Like, Not
from repro.datastore.schema import Column, ColumnType
from repro.datastore.sqlmini import parse
from repro.datastore.store import RelationalStore

COLUMNS = ["alpha", "beta", "gamma"]
SEED = 0xC0FFEE
TREES = 400


def random_value(rng: random.Random):
    pick = rng.randrange(5)
    if pick == 0:
        return rng.randint(-100, 100)
    if pick == 1:
        return rng.choice([True, False])
    if pick == 2:
        return None
    if pick == 3:
        return round(rng.uniform(-50, 50), 3)
    alphabet = "ab'c%_ "
    return "".join(rng.choice(alphabet) for _ in range(rng.randrange(7)))


def random_leaf(rng: random.Random):
    column = rng.choice(COLUMNS)
    pick = rng.randrange(6)
    if pick == 0:
        return Cmp(column, rng.choice(["=", "!="]), random_value(rng))
    if pick == 1:
        return Cmp(column, rng.choice(["<", "<=", ">", ">="]), rng.randint(-100, 100))
    if pick == 2:
        return In(column, [rng.randint(-5, 5) for _ in range(rng.randrange(5))])
    if pick == 3:
        alphabet = "ab%_'"
        return Like(column, "".join(rng.choice(alphabet) for _ in range(rng.randrange(6))))
    if pick == 4:
        return IsNull(column)
    return ALWAYS


def random_tree(rng: random.Random, depth: int = 0):
    if depth >= 3 or rng.random() < 0.4:
        return random_leaf(rng)
    pick = rng.randrange(3)
    if pick == 0:
        return random_tree(rng, depth + 1) & random_tree(rng, depth + 1)
    if pick == 1:
        return random_tree(rng, depth + 1) | random_tree(rng, depth + 1)
    return Not(random_tree(rng, depth + 1))


def random_row(rng: random.Random):
    row = {}
    for column in COLUMNS:
        pick = rng.randrange(5)
        if pick == 0:
            continue  # column absent
        if pick == 1:
            row[column] = rng.randint(-100, 100)
        elif pick == 2:
            row[column] = rng.choice([True, False, None])
        else:
            row[column] = "".join(
                rng.choice("abc%_' ") for _ in range(rng.randrange(6))
            )
    return row


def parse_where(expr: str):
    return parse(f"SELECT * FROM t WHERE {expr}").predicate


def test_to_sql_is_a_parser_fixed_point():
    rng = random.Random(SEED)
    for _ in range(TREES):
        pred = random_tree(rng)
        sql = pred.to_sql()
        assert parse_where(sql).to_sql() == sql, sql


def test_reparsed_predicate_matches_identically():
    rng = random.Random(SEED + 1)
    for _ in range(TREES):
        pred = random_tree(rng)
        reparsed = parse_where(pred.to_sql())
        for _ in range(5):
            row = random_row(rng)
            assert reparsed.matches(row) == pred.matches(row), (
                f"divergence on {row} for {pred.to_sql()!r}"
            )


@pytest.fixture
def store():
    from repro.datastore.schema import Schema

    store = RelationalStore("gen")
    store.create_table(
        "t",
        Schema(
            (
                Column("id", ColumnType.INT),
                Column("alpha", ColumnType.JSON, nullable=True, default=None),
                Column("beta", ColumnType.JSON, nullable=True, default=None),
                Column("gamma", ColumnType.JSON, nullable=True, default=None),
            ),
            primary_key="id",
        ),
    )
    rng = random.Random(SEED + 2)
    for i in range(60):
        row = random_row(rng)
        row["id"] = i
        store.insert("t", row)
    return store


def test_select_agrees_with_roundtripped_predicate(store):
    rng = random.Random(SEED + 3)
    nontrivial = 0
    for _ in range(150):
        pred = random_tree(rng)
        direct = {r["id"] for r in store.select("t", pred)}
        via_sql = {r["id"] for r in store.select("t", parse_where(pred.to_sql()))}
        assert direct == via_sql, pred.to_sql()
        if 0 < len(direct) < 60:
            nontrivial += 1
    # the generator must exercise real filtering, not just ALWAYS/NEVER
    assert nontrivial > 20
