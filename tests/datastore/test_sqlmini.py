"""Tests for the mini-SQL tokenizer/parser/executor."""

import pytest

from repro.datastore.schema import Column, ColumnType, schema
from repro.datastore.sqlmini import (
    DeleteStatement,
    InsertStatement,
    SelectStatement,
    UpdateStatement,
    parse,
    tokenize,
)
from repro.datastore.store import RelationalStore
from repro.util.errors import SqlSyntaxError


def make_store():
    s = RelationalStore("cal")
    s.create_table(
        "slots",
        schema(
            "id",
            id=ColumnType.INT,
            status=ColumnType.STR,
            hour=ColumnType.INT,
            owner=Column("", ColumnType.STR, nullable=True),
        ),
    )
    for i, (status, hour, owner) in enumerate(
        [("free", 9, None), ("busy", 10, "phil"), ("free", 11, None), ("busy", 12, "andy")]
    ):
        s.insert("slots", {"id": i, "status": status, "hour": hour, "owner": owner})
    return s


class TestTokenizer:
    def test_keywords_case_insensitive(self):
        toks = tokenize("select FROM Where")
        assert [t.value for t in toks[:-1]] == ["SELECT", "FROM", "WHERE"]

    def test_identifiers_keep_case(self):
        toks = tokenize("MyTable my_col2")
        assert [t.value for t in toks[:-1]] == ["MyTable", "my_col2"]

    def test_string_literal_with_escaped_quote(self):
        toks = tokenize("'it''s'")
        assert toks[0].kind == "str"
        assert toks[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("'oops")

    def test_numbers(self):
        toks = tokenize("42 -7 3.5")
        assert [t.value for t in toks[:-1]] == [42, -7, 3.5]

    def test_bad_number(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("1.2.3")

    def test_two_char_operators(self):
        toks = tokenize("<= >= != <>")
        assert [t.value for t in toks[:-1]] == ["<=", ">=", "!=", "!="]

    def test_junk_character(self):
        with pytest.raises(SqlSyntaxError):
            tokenize("SELECT @")


class TestParser:
    def test_select_star(self):
        stmt = parse("SELECT * FROM slots")
        assert isinstance(stmt, SelectStatement)
        assert stmt.columns is None
        assert stmt.table == "slots"

    def test_select_columns_order_limit(self):
        stmt = parse("SELECT id, hour FROM slots ORDER BY hour DESC LIMIT 3")
        assert stmt.columns == ["id", "hour"]
        assert stmt.order_by == "hour"
        assert stmt.descending
        assert stmt.limit == 3

    def test_select_order_asc_default(self):
        stmt = parse("SELECT * FROM slots ORDER BY hour ASC")
        assert not stmt.descending

    def test_bad_limit(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM slots LIMIT 'x'")

    def test_insert(self):
        stmt = parse("INSERT INTO slots (id, status) VALUES (9, 'free')")
        assert isinstance(stmt, InsertStatement)
        assert stmt.row == {"id": 9, "status": "free"}

    def test_insert_arity_mismatch(self):
        with pytest.raises(SqlSyntaxError):
            parse("INSERT INTO slots (id, status) VALUES (9)")

    def test_update(self):
        stmt = parse("UPDATE slots SET status = 'busy', owner = NULL WHERE id = 1")
        assert isinstance(stmt, UpdateStatement)
        assert stmt.changes == {"status": "busy", "owner": None}

    def test_delete(self):
        stmt = parse("DELETE FROM slots WHERE status = 'free'")
        assert isinstance(stmt, DeleteStatement)

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM slots garbage")

    def test_statement_must_start_with_keyword(self):
        with pytest.raises(SqlSyntaxError):
            parse("slots SELECT")

    def test_unsupported_statement(self):
        with pytest.raises(SqlSyntaxError):
            parse("ORDER BY x")


class TestWhereGrammar:
    def test_and_or_precedence(self):
        # a OR b AND c parses as a OR (b AND c)
        stmt = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3")
        assert stmt.predicate.matches({"a": 1, "b": 0, "c": 0})
        assert stmt.predicate.matches({"a": 0, "b": 2, "c": 3})
        assert not stmt.predicate.matches({"a": 0, "b": 2, "c": 0})

    def test_parentheses_override(self):
        stmt = parse("SELECT * FROM t WHERE (a = 1 OR b = 2) AND c = 3")
        assert not stmt.predicate.matches({"a": 1, "b": 0, "c": 0})
        assert stmt.predicate.matches({"a": 1, "b": 0, "c": 3})

    def test_not(self):
        stmt = parse("SELECT * FROM t WHERE NOT a = 1")
        assert stmt.predicate.matches({"a": 2})

    def test_in_clause(self):
        stmt = parse("SELECT * FROM t WHERE hour IN (9, 10, 11)")
        assert stmt.predicate.matches({"hour": 10})
        assert not stmt.predicate.matches({"hour": 13})

    def test_like_clause(self):
        stmt = parse("SELECT * FROM t WHERE name LIKE 'Ph%'")
        assert stmt.predicate.matches({"name": "Phil"})

    def test_like_requires_string(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM t WHERE name LIKE 5")

    def test_is_null_and_is_not_null(self):
        stmt = parse("SELECT * FROM t WHERE owner IS NULL")
        assert stmt.predicate.matches({"owner": None})
        stmt = parse("SELECT * FROM t WHERE owner IS NOT NULL")
        assert stmt.predicate.matches({"owner": "x"})

    def test_boolean_literals(self):
        stmt = parse("SELECT * FROM t WHERE flag = TRUE")
        assert stmt.predicate.matches({"flag": True})

    def test_comparison_required(self):
        with pytest.raises(SqlSyntaxError):
            parse("SELECT * FROM t WHERE a")


class TestExecutor:
    def test_select(self):
        rows = make_store().sql("SELECT id FROM slots WHERE status = 'free' ORDER BY id")
        assert [r["id"] for r in rows] == [0, 2]

    def test_insert(self):
        s = make_store()
        row = s.sql("INSERT INTO slots (id, status, hour) VALUES (10, 'free', 14)")
        assert row["owner"] is None
        assert s.count("slots") == 5

    def test_update(self):
        s = make_store()
        n = s.sql("UPDATE slots SET status = 'reserved' WHERE hour >= 11")
        assert n == 2

    def test_delete(self):
        s = make_store()
        n = s.sql("DELETE FROM slots WHERE owner IS NOT NULL")
        assert n == 2
        assert s.count("slots") == 2

    def test_select_no_where_selects_all(self):
        assert len(make_store().sql("SELECT * FROM slots")) == 4

    def test_update_without_where_hits_all(self):
        s = make_store()
        assert s.sql("UPDATE slots SET status = 'x'") == 4
