"""Tests for whole-store snapshots."""

import pytest

from repro.datastore.flatfile import FlatFileStore
from repro.datastore.schema import Column, ColumnType, schema
from repro.datastore.snapshot import (
    export_store,
    import_into,
    schema_from_dict,
    schema_to_dict,
)
from repro.datastore.store import RelationalStore
from repro.util.errors import StoreError


def make_store():
    s = RelationalStore("src")
    s.create_table(
        "t",
        schema(
            "id",
            id=ColumnType.INT,
            name=ColumnType.STR,
            tags=Column("", ColumnType.JSON, nullable=True),
            active=Column("", ColumnType.BOOL, default=True),
        ),
    )
    s.insert("t", {"id": 1, "name": "a", "tags": [1, 2]})
    s.insert("t", {"id": 2, "name": "b", "active": False})
    return s


def test_schema_roundtrip():
    s = make_store().schema("t")
    back = schema_from_dict(schema_to_dict(s))
    assert back == s
    assert back.column("active").default is True


def test_export_import_roundtrip():
    src = make_store()
    dst = RelationalStore("dst")
    n = import_into(dst, export_store(src))
    assert n == 2
    assert dst.select("t") == src.select("t")
    assert dst.schema("t") == src.schema("t")


def test_import_into_different_store_kind():
    src = make_store()
    dst = FlatFileStore("dst")
    import_into(dst, export_store(src))
    assert dst.select("t") == src.select("t")


def test_import_conflict_without_replace():
    src = make_store()
    dst = make_store()
    with pytest.raises(StoreError):
        import_into(dst, export_store(src))


def test_import_replace_overwrites():
    src = make_store()
    dst = make_store()
    dst.insert("t", {"id": 99, "name": "junk"})
    import_into(dst, export_store(src), replace=True)
    assert dst.count("t") == 2


def test_export_records_kind_and_name():
    snap = export_store(make_store())
    assert snap["kind"] == "relational"
    assert snap["name"] == "src"
