"""Property test: Predicate.to_sql round-trips through the parser.

For randomly generated predicate ASTs and random rows, the predicate
parsed back from ``to_sql()`` must agree with the original on every row.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastore.predicate import (
    ALWAYS,
    Cmp,
    In,
    IsNull,
    Like,
    Not,
    sql_literal,
    where,
)
from repro.datastore.sqlmini import parse
from repro.util.errors import QueryError

COLUMNS = ["alpha", "beta", "gamma"]

_value = st.one_of(
    st.integers(-100, 100),
    st.booleans(),
    st.none(),
    st.text(alphabet="ab'c%_ ", max_size=6),
    st.floats(allow_nan=False, allow_infinity=False, width=16),
)

_leaf = st.one_of(
    st.builds(Cmp, st.sampled_from(COLUMNS), st.sampled_from(["=", "!="]), _value),
    st.builds(
        Cmp,
        st.sampled_from(COLUMNS),
        st.sampled_from(["<", "<=", ">", ">="]),
        st.integers(-100, 100),
    ),
    st.builds(In, st.sampled_from(COLUMNS), st.lists(st.integers(-5, 5), max_size=4)),
    st.builds(Like, st.sampled_from(COLUMNS), st.text(alphabet="ab%_'", max_size=5)),
    st.builds(IsNull, st.sampled_from(COLUMNS)),
    st.just(ALWAYS),
)

_predicate = st.recursive(
    _leaf,
    lambda children: st.one_of(
        st.builds(lambda a, b: a & b, children, children),
        st.builds(lambda a, b: a | b, children, children),
        st.builds(Not, children),
    ),
    max_leaves=8,
)

_row = st.fixed_dictionaries(
    {},
    optional={
        c: st.one_of(
            st.integers(-100, 100), st.booleans(), st.none(), st.text(max_size=6)
        )
        for c in COLUMNS
    },
)


def parse_where(expr: str):
    return parse(f"SELECT * FROM t WHERE {expr}").predicate


@settings(max_examples=300, deadline=None)
@given(pred=_predicate, rows=st.lists(_row, max_size=5))
def test_to_sql_roundtrip_equivalence(pred, rows):
    reparsed = parse_where(pred.to_sql())
    for row in rows:
        assert reparsed.matches(row) == pred.matches(row), (
            f"divergence on {row} for {pred.to_sql()!r}"
        )


def test_sql_literal_forms():
    assert sql_literal(None) == "NULL"
    assert sql_literal(True) == "TRUE"
    assert sql_literal(False) == "FALSE"
    assert sql_literal(5) == "5"
    assert sql_literal(2.5) == "2.5"
    assert sql_literal("it's") == "'it''s'"
    with pytest.raises(QueryError):
        sql_literal([1, 2])


def test_always_tautology_parses_and_matches_everything():
    reparsed = parse_where(ALWAYS.to_sql())
    assert reparsed.matches({})
    assert reparsed.matches({"alpha": 1})


def test_empty_in_matches_nothing():
    reparsed = parse_where(In("alpha", []).to_sql())
    assert not reparsed.matches({"alpha": 1})
    assert not reparsed.matches({})


def test_examples_read_naturally():
    pred = (where("alpha") == 3) & ~where("beta").like("x%")
    assert pred.to_sql() == "(alpha = 3 AND NOT (beta LIKE 'x%'))"
