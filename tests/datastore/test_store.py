"""Tests for RelationalStore (incl. trigger firing)."""

import pytest

from repro.datastore.predicate import where
from repro.datastore.schema import ColumnType, schema
from repro.datastore.store import RelationalStore
from repro.datastore.triggers import RowTrigger, TriggerEvent
from repro.util.errors import StoreError, UnknownTableError, UnsupportedOperationError


def make_store():
    store = RelationalStore("phil")
    store.create_table(
        "cal", schema("id", id=ColumnType.INT, status=ColumnType.STR)
    )
    return store


class TestSchemaOps:
    def test_create_and_list(self):
        s = make_store()
        assert s.table_names() == ["cal"]
        assert s.has_table("cal")
        assert s.schema("cal").primary_key == "id"

    def test_duplicate_table_rejected(self):
        s = make_store()
        with pytest.raises(StoreError):
            s.create_table("cal", schema("id", id=ColumnType.INT))

    def test_drop_table(self):
        s = make_store()
        s.drop_table("cal")
        assert not s.has_table("cal")
        with pytest.raises(UnknownTableError):
            s.drop_table("cal")

    def test_unknown_table_operations(self):
        s = make_store()
        with pytest.raises(UnknownTableError):
            s.insert("nope", {})
        with pytest.raises(UnknownTableError):
            s.select("nope")


class TestDataOps:
    def test_crud_cycle(self):
        s = make_store()
        s.insert("cal", {"id": 1, "status": "free"})
        assert s.get("cal", 1)["status"] == "free"
        assert s.update("cal", where("id") == 1, {"status": "busy"}) == 1
        assert s.get("cal", 1)["status"] == "busy"
        assert s.delete("cal", where("id") == 1) == 1
        assert s.get("cal", 1) is None

    def test_count(self):
        s = make_store()
        for i in range(5):
            s.insert("cal", {"id": i, "status": "free" if i % 2 else "busy"})
        assert s.count("cal") == 5
        assert s.count("cal", where("status") == "free") == 2

    def test_storage_bytes(self):
        s = make_store()
        empty = s.storage_bytes()
        s.insert("cal", {"id": 1, "status": "free"})
        assert s.storage_bytes() > empty


class TestTriggers:
    def test_insert_trigger_fires(self):
        s = make_store()
        seen = []
        s.add_trigger(
            RowTrigger(
                "t1", "cal", frozenset({TriggerEvent.INSERT}), lambda ctx: seen.append(ctx)
            )
        )
        s.insert("cal", {"id": 1, "status": "free"})
        assert len(seen) == 1
        assert seen[0].new["id"] == 1
        assert seen[0].old is None

    def test_update_trigger_sees_old_and_new(self):
        s = make_store()
        seen = []
        s.insert("cal", {"id": 1, "status": "free"})
        s.add_trigger(
            RowTrigger(
                "t1", "cal", frozenset({TriggerEvent.UPDATE}), lambda ctx: seen.append(ctx)
            )
        )
        s.update("cal", where("id") == 1, {"status": "busy"})
        assert seen[0].old["status"] == "free"
        assert seen[0].new["status"] == "busy"
        assert seen[0].changed("status")
        assert not seen[0].changed("id")

    def test_delete_trigger_sees_old(self):
        s = make_store()
        seen = []
        s.insert("cal", {"id": 1, "status": "free"})
        s.add_trigger(
            RowTrigger(
                "t1", "cal", frozenset({TriggerEvent.DELETE}), lambda ctx: seen.append(ctx)
            )
        )
        s.delete("cal", where("id") == 1)
        assert seen[0].old["id"] == 1
        assert seen[0].new is None

    def test_conditional_trigger(self):
        s = make_store()
        seen = []
        s.add_trigger(
            RowTrigger(
                "t1",
                "cal",
                frozenset({TriggerEvent.INSERT}),
                lambda ctx: seen.append(ctx.new["id"]),
                condition=where("status") == "busy",
            )
        )
        s.insert("cal", {"id": 1, "status": "free"})
        s.insert("cal", {"id": 2, "status": "busy"})
        assert seen == [2]

    def test_trigger_removal(self):
        s = make_store()
        seen = []
        remove = s.add_trigger(
            RowTrigger(
                "t1", "cal", frozenset({TriggerEvent.INSERT}), lambda ctx: seen.append(1)
            )
        )
        remove()
        s.insert("cal", {"id": 1, "status": "x"})
        assert seen == []

    def test_duplicate_trigger_name_rejected(self):
        s = make_store()
        trig = RowTrigger("t1", "cal", frozenset({TriggerEvent.INSERT}), lambda ctx: None)
        s.add_trigger(trig)
        with pytest.raises(StoreError):
            s.add_trigger(
                RowTrigger("t1", "cal", frozenset({TriggerEvent.INSERT}), lambda ctx: None)
            )

    def test_runaway_trigger_cascade_guarded(self):
        s = make_store()
        counter = {"n": 0}

        def recurse(ctx):
            counter["n"] += 1
            s.insert("cal", {"id": 1000 + counter["n"], "status": "x"})

        s.add_trigger(
            RowTrigger("t1", "cal", frozenset({TriggerEvent.INSERT}), recurse)
        )
        with pytest.raises(StoreError, match="depth"):
            s.insert("cal", {"id": 1, "status": "x"})

    def test_disabled_trigger_does_not_fire(self):
        s = make_store()
        trig = RowTrigger(
            "t1", "cal", frozenset({TriggerEvent.INSERT}), lambda ctx: seen.append(1)
        )
        seen = []
        trig.enabled = False
        s.add_trigger(trig)
        s.insert("cal", {"id": 1, "status": "x"})
        assert seen == []

    def test_fire_count_tracked(self):
        s = make_store()
        trig = RowTrigger("t1", "cal", frozenset({TriggerEvent.INSERT}), lambda ctx: None)
        s.add_trigger(trig)
        s.insert("cal", {"id": 1, "status": "x"})
        s.insert("cal", {"id": 2, "status": "x"})
        assert trig.fire_count == 2


def test_abstract_extras_unsupported():
    from repro.datastore.liststore import ListStore

    ls = ListStore("x")
    with pytest.raises(UnsupportedOperationError):
        ls.create_index("t", "c")
    with pytest.raises(UnsupportedOperationError):
        ls.sql("SELECT * FROM t")
