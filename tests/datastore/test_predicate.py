"""Tests for the predicate AST."""

import pytest

from repro.datastore.predicate import (
    ALWAYS,
    Cmp,
    In,
    IsNull,
    Like,
    Not,
    equality_bindings,
    where,
)
from repro.util.errors import QueryError

ROW = {"status": "free", "hour": 10, "owner": None, "name": "Phil Smith"}


class TestCmp:
    def test_equality(self):
        assert (where("status") == "free").matches(ROW)
        assert not (where("status") == "busy").matches(ROW)

    def test_inequality(self):
        assert (where("status") != "busy").matches(ROW)

    def test_ordering(self):
        assert (where("hour") > 9).matches(ROW)
        assert (where("hour") >= 10).matches(ROW)
        assert (where("hour") < 11).matches(ROW)
        assert (where("hour") <= 10).matches(ROW)
        assert not (where("hour") > 10).matches(ROW)

    def test_ordering_against_null_is_false(self):
        assert not (where("owner") > 1).matches(ROW)
        assert not (where("owner") < 1).matches(ROW)

    def test_missing_column_treated_as_null(self):
        assert (where("ghost") == None).matches(ROW)  # noqa: E711
        assert not (where("ghost") > 0).matches(ROW)

    def test_unknown_op_rejected(self):
        with pytest.raises(QueryError):
            Cmp("x", "~", 1)


class TestCombinators:
    def test_and(self):
        pred = (where("status") == "free") & (where("hour") >= 9)
        assert pred.matches(ROW)
        assert not ((where("status") == "busy") & (where("hour") >= 9)).matches(ROW)

    def test_or(self):
        assert ((where("status") == "busy") | (where("hour") == 10)).matches(ROW)

    def test_not(self):
        assert (~(where("status") == "busy")).matches(ROW)

    def test_columns_union(self):
        pred = (where("a") == 1) & ((where("b") == 2) | ~(where("c") == 3))
        assert pred.columns() == {"a", "b", "c"}


class TestSpecials:
    def test_in(self):
        assert where("hour").isin([9, 10, 11]).matches(ROW)
        assert not where("hour").isin([1, 2]).matches(ROW)

    def test_like_percent(self):
        assert where("name").like("Phil%").matches(ROW)
        assert where("name").like("%Smith").matches(ROW)
        assert not where("name").like("Bob%").matches(ROW)

    def test_like_underscore(self):
        assert where("name").like("Phil Smit_").matches(ROW)

    def test_like_non_string_is_false(self):
        assert not where("hour").like("1%").matches(ROW)

    def test_like_escapes_regex_chars(self):
        assert Like("name", "Phil (x)").matches({"name": "Phil (x)"})
        assert not Like("name", "Phil .").matches({"name": "Phil x"})

    def test_is_null(self):
        assert where("owner").is_null().matches(ROW)
        assert not where("status").is_null().matches(ROW)
        assert Not(IsNull("status")).matches(ROW)

    def test_always(self):
        assert ALWAYS.matches({})
        assert ALWAYS.columns() == set()


class TestEqualityBindings:
    def test_single_eq(self):
        assert equality_bindings(where("a") == 1) == {"a": 1}

    def test_conjunction(self):
        pred = (where("a") == 1) & (where("b") == 2) & (where("c") > 3)
        assert equality_bindings(pred) == {"a": 1, "b": 2}

    def test_or_terms_excluded(self):
        pred = (where("a") == 1) | (where("b") == 2)
        assert equality_bindings(pred) == {}

    def test_not_terms_excluded(self):
        assert equality_bindings(~(where("a") == 1)) == {}

    def test_in_not_extracted(self):
        assert equality_bindings(In("a", [1, 2])) == {}


def test_reprs_render():
    pred = ((where("a") == 1) | ~where("b").like("x%")) & where("c").isin([1])
    assert "AND" in repr(pred)
    assert "LIKE" in repr(pred)
