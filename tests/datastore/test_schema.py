"""Tests for table schemas."""

import pytest

from repro.datastore.schema import Column, ColumnType, Schema, schema
from repro.util.errors import SchemaError


def make_schema():
    return schema(
        "id",
        id=ColumnType.INT,
        name=ColumnType.STR,
        score=Column("", ColumnType.FLOAT, nullable=True),
        active=Column("", ColumnType.BOOL, default=True),
    )


class TestColumnType:
    def test_int_accepts_ints_not_bools(self):
        assert ColumnType.INT.accepts(5)
        assert not ColumnType.INT.accepts(True)
        assert not ColumnType.INT.accepts(5.0)

    def test_float_accepts_ints_and_floats(self):
        assert ColumnType.FLOAT.accepts(5)
        assert ColumnType.FLOAT.accepts(5.5)
        assert not ColumnType.FLOAT.accepts("5.5")

    def test_str_bool(self):
        assert ColumnType.STR.accepts("x")
        assert not ColumnType.STR.accepts(1)
        assert ColumnType.BOOL.accepts(False)
        assert not ColumnType.BOOL.accepts(0)

    def test_json_accepts_nested(self):
        assert ColumnType.JSON.accepts({"a": [1, "x", {"b": None}]})
        assert not ColumnType.JSON.accepts({1: "non-str key"})
        assert not ColumnType.JSON.accepts(object())

    def test_coerce_from_strings(self):
        assert ColumnType.INT.coerce("42") == 42
        assert ColumnType.FLOAT.coerce("4.5") == 4.5
        assert ColumnType.BOOL.coerce("true") is True
        assert ColumnType.BOOL.coerce("false") is False
        assert ColumnType.STR.coerce(17) == "17"
        assert ColumnType.INT.coerce(None) is None


class TestColumn:
    def test_validate_accepts_good_value(self):
        Column("x", ColumnType.INT).validate(3)

    def test_validate_rejects_wrong_type(self):
        with pytest.raises(SchemaError):
            Column("x", ColumnType.INT).validate("3")

    def test_nullable_accepts_none(self):
        Column("x", ColumnType.INT, nullable=True).validate(None)

    def test_non_nullable_rejects_none(self):
        with pytest.raises(SchemaError):
            Column("x", ColumnType.INT).validate(None)


class TestSchema:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Schema((Column("a", ColumnType.INT), Column("a", ColumnType.STR)), "a")

    def test_pk_must_be_a_column(self):
        with pytest.raises(SchemaError):
            Schema((Column("a", ColumnType.INT),), "zz")

    def test_pk_cannot_be_nullable(self):
        with pytest.raises(SchemaError):
            Schema((Column("a", ColumnType.INT, nullable=True),), "a")

    def test_column_lookup(self):
        s = make_schema()
        assert s.column("name").ctype is ColumnType.STR
        assert s.has_column("score")
        assert not s.has_column("nope")
        with pytest.raises(SchemaError):
            s.column("nope")

    def test_column_names_ordered(self):
        assert make_schema().column_names == ["id", "name", "score", "active"]


class TestNormalizeInsert:
    def test_applies_defaults_and_nullable(self):
        row = make_schema().normalize_insert({"id": 1, "name": "a"})
        assert row == {"id": 1, "name": "a", "score": None, "active": True}

    def test_missing_required_rejected(self):
        with pytest.raises(SchemaError, match="name"):
            make_schema().normalize_insert({"id": 1})

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError, match="bogus"):
            make_schema().normalize_insert({"id": 1, "name": "a", "bogus": 1})

    def test_type_mismatch_rejected(self):
        with pytest.raises(SchemaError):
            make_schema().normalize_insert({"id": "one", "name": "a"})

    def test_returns_new_dict(self):
        src = {"id": 1, "name": "a"}
        row = make_schema().normalize_insert(src)
        assert row is not src


class TestValidateUpdate:
    def test_good_update(self):
        make_schema().validate_update({"name": "b", "score": 1.5})

    def test_pk_update_rejected(self):
        with pytest.raises(SchemaError, match="primary key"):
            make_schema().validate_update({"id": 2})

    def test_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            make_schema().validate_update({"bogus": 1})


def test_schema_helper_with_full_columns():
    s = schema("k", k=ColumnType.STR, v=Column("ignored", ColumnType.INT, default=0))
    assert s.column("v").default == 0
    assert s.column("v").name == "v"
