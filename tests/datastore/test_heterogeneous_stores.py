"""FlatFileStore and ListStore behave like RelationalStore.

Heterogeneity is a core SyD claim (paper §2): the same application logic
must run over a real database, a flat file, or a list repository. These
tests run one shared behavioural suite against all three store kinds,
plus a hypothesis property test checking operation-sequence equivalence.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastore.flatfile import FlatFileStore
from repro.datastore.liststore import ListStore
from repro.datastore.predicate import where
from repro.datastore.schema import Column, ColumnType, schema
from repro.datastore.store import RelationalStore
from repro.datastore.triggers import RowTrigger, TriggerEvent
from repro.util.errors import DuplicateKeyError, UnknownTableError

STORE_KINDS = [RelationalStore, FlatFileStore, ListStore]


def slot_schema():
    return schema(
        "id",
        id=ColumnType.INT,
        status=ColumnType.STR,
        hour=ColumnType.INT,
        owner=Column("", ColumnType.STR, nullable=True),
        meta=Column("", ColumnType.JSON, nullable=True),
    )


@pytest.fixture(params=STORE_KINDS, ids=lambda c: c.kind)
def store(request):
    s = request.param("test")
    s.create_table("slots", slot_schema())
    return s


class TestUniformBehaviour:
    def test_insert_get_roundtrip(self, store):
        store.insert("slots", {"id": 1, "status": "free", "hour": 9})
        row = store.get("slots", 1)
        assert row["status"] == "free"
        assert row["owner"] is None

    def test_json_column_roundtrip(self, store):
        store.insert(
            "slots",
            {"id": 1, "status": "x", "hour": 9, "meta": {"tags": ["a", 1], "n": None}},
        )
        assert store.get("slots", 1)["meta"] == {"tags": ["a", 1], "n": None}

    def test_duplicate_pk_rejected(self, store):
        store.insert("slots", {"id": 1, "status": "a", "hour": 9})
        with pytest.raises(DuplicateKeyError):
            store.insert("slots", {"id": 1, "status": "b", "hour": 9})

    def test_select_filter_order_limit(self, store):
        for i in range(6):
            store.insert(
                "slots", {"id": i, "status": "free" if i % 2 else "busy", "hour": 20 - i}
            )
        rows = store.select(
            "slots", where("status") == "free", order_by="hour", limit=2
        )
        assert [r["id"] for r in rows] == [5, 3]

    def test_projection(self, store):
        store.insert("slots", {"id": 1, "status": "a", "hour": 9})
        rows = store.select("slots", columns=["id", "hour"])
        assert rows == [{"id": 1, "hour": 9}]

    def test_update_and_count(self, store):
        for i in range(4):
            store.insert("slots", {"id": i, "status": "free", "hour": i})
        assert store.update("slots", where("hour") >= 2, {"status": "busy"}) == 2
        assert store.count("slots", where("status") == "busy") == 2

    def test_delete(self, store):
        for i in range(4):
            store.insert("slots", {"id": i, "status": "free", "hour": i})
        assert store.delete("slots", where("id") == 2) == 1
        assert store.get("slots", 2) is None

    def test_unknown_table(self, store):
        with pytest.raises(UnknownTableError):
            store.select("nope")

    def test_triggers_fire_on_all_kinds(self, store):
        seen = []
        store.add_trigger(
            RowTrigger(
                "t",
                "slots",
                frozenset({TriggerEvent.INSERT, TriggerEvent.UPDATE, TriggerEvent.DELETE}),
                lambda ctx: seen.append(ctx.event.value),
            )
        )
        store.insert("slots", {"id": 1, "status": "a", "hour": 9})
        store.update("slots", where("id") == 1, {"status": "b"})
        store.delete("slots", where("id") == 1)
        assert seen == ["insert", "update", "delete"]

    def test_storage_bytes_nonzero(self, store):
        store.insert("slots", {"id": 1, "status": "a", "hour": 9})
        assert store.storage_bytes() > 0

    def test_escaping_hostile_strings(self, store):
        hostile = "tab\there\nnewline\\backslash'quote"
        store.insert("slots", {"id": 1, "status": hostile, "hour": 9})
        assert store.get("slots", 1)["status"] == hostile


def test_flatfile_dump_load_roundtrip():
    a = FlatFileStore("a")
    a.create_table("slots", slot_schema())
    a.insert("slots", {"id": 1, "status": "free", "hour": 9, "meta": [1, 2]})
    a.insert("slots", {"id": 2, "status": "busy", "hour": 10, "owner": "phil"})

    b = FlatFileStore("b")
    b.load("slots", a.dump("slots"))
    assert b.select("slots") == a.select("slots")
    assert b.schema("slots").primary_key == "id"


def test_flatfile_load_rejects_garbage():
    from repro.util.errors import StoreError

    s = FlatFileStore("x")
    with pytest.raises(StoreError):
        s.load("t", "not a dump")


# -- property: the three stores are observationally equivalent ---------------

_ops = st.lists(
    st.one_of(
        st.tuples(
            st.just("insert"),
            st.integers(0, 9),
            st.sampled_from(["free", "busy", "reserved"]),
            st.integers(0, 23),
        ),
        st.tuples(
            st.just("update"),
            st.integers(0, 9),
            st.sampled_from(["free", "busy", "reserved"]),
        ),
        st.tuples(st.just("delete"), st.integers(0, 9)),
    ),
    max_size=25,
)


@settings(max_examples=60, deadline=None)
@given(ops=_ops)
def test_store_kinds_observationally_equivalent(ops):
    stores = []
    for cls in STORE_KINDS:
        s = cls("p")
        s.create_table("slots", slot_schema())
        stores.append(s)

    for op in ops:
        results = []
        for s in stores:
            try:
                if op[0] == "insert":
                    s.insert(
                        "slots", {"id": op[1], "status": op[2], "hour": op[3]}
                    )
                    results.append(("ok", None))
                elif op[0] == "update":
                    n = s.update("slots", where("id") == op[1], {"status": op[2]})
                    results.append(("ok", n))
                else:
                    n = s.delete("slots", where("id") == op[1])
                    results.append(("ok", n))
            except DuplicateKeyError:
                results.append(("dup", None))
        assert len(set(results)) == 1, f"divergence on {op}: {results}"

    final = [s.select("slots", order_by="id") for s in stores]
    assert final[0] == final[1] == final[2]
