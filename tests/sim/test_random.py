"""Tests for seeded random streams."""

from repro.sim.random import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(42).get("net")
    b = RandomStreams(42).get("net")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]


def test_different_streams_are_independent():
    streams = RandomStreams(42)
    net = streams.get("net")
    wl = streams.get("workload")
    seq_wl = [wl.random() for _ in range(5)]

    # Re-derive: drawing from net first must not change workload's sequence.
    streams2 = RandomStreams(42)
    _ = [streams2.get("net").random() for _ in range(100)]
    seq_wl2 = [streams2.get("workload").random() for _ in range(5)]
    assert seq_wl == seq_wl2


def test_different_seeds_differ():
    a = RandomStreams(1).get("net")
    b = RandomStreams(2).get("net")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_get_returns_same_stream_object():
    streams = RandomStreams(0)
    assert streams.get("x") is streams.get("x")


def test_reset_rederives_identically():
    streams = RandomStreams(7)
    first = [streams.get("s").random() for _ in range(3)]
    streams.reset()
    second = [streams.get("s").random() for _ in range(3)]
    assert first == second
