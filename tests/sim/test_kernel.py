"""Tests for the discrete-event scheduler."""

import pytest

from repro.sim.kernel import EventScheduler
from repro.util.clock import VirtualClock


def test_events_fire_in_time_order():
    sched = EventScheduler()
    fired = []
    sched.schedule(2.0, fired.append, "b")
    sched.schedule(1.0, fired.append, "a")
    sched.schedule(3.0, fired.append, "c")
    sched.run_until(10.0)
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    sched = EventScheduler()
    fired = []
    for name in ["first", "second", "third"]:
        sched.schedule(1.0, fired.append, name)
    sched.run_until(1.0)
    assert fired == ["first", "second", "third"]


def test_clock_advances_to_event_times():
    clock = VirtualClock()
    sched = EventScheduler(clock)
    times = []
    sched.schedule(1.5, lambda: times.append(clock.now()))
    sched.schedule(4.0, lambda: times.append(clock.now()))
    sched.run_until(5.0)
    assert times == [1.5, 4.0]
    assert clock.now() == 5.0


def test_run_until_leaves_future_events():
    sched = EventScheduler()
    fired = []
    sched.schedule(1.0, fired.append, "early")
    sched.schedule(9.0, fired.append, "late")
    sched.run_until(5.0)
    assert fired == ["early"]
    assert sched.pending() == 1


def test_negative_delay_rejected():
    sched = EventScheduler()
    with pytest.raises(ValueError):
        sched.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    sched = EventScheduler(VirtualClock(10.0))
    with pytest.raises(ValueError):
        sched.schedule_at(5.0, lambda: None)


def test_cancel_prevents_firing():
    sched = EventScheduler()
    fired = []
    handle = sched.schedule(1.0, fired.append, "x")
    handle.cancel()
    sched.run_until(5.0)
    assert fired == []
    assert handle.cancelled


def test_pending_ignores_cancelled():
    sched = EventScheduler()
    h = sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    h.cancel()
    assert sched.pending() == 1


def test_event_may_schedule_more_events():
    sched = EventScheduler()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sched.schedule(1.0, chain, n + 1)

    sched.schedule(1.0, chain, 1)
    sched.run_until(10.0)
    assert fired == [1, 2, 3]


def test_periodic_task_fires_repeatedly():
    sched = EventScheduler()
    fired = []
    sched.every(2.0, lambda: fired.append(sched.clock.now()))
    sched.run_until(7.0)
    assert fired == [2.0, 4.0, 6.0]


def test_periodic_task_cancel_stops_it():
    sched = EventScheduler()
    fired = []
    handle = sched.every(1.0, lambda: fired.append(1))
    sched.run_until(2.5)
    handle.cancel()
    sched.run_until(10.0)
    assert len(fired) == 2


def test_periodic_rejects_bad_interval():
    sched = EventScheduler()
    with pytest.raises(ValueError):
        sched.every(0.0, lambda: None)


def test_run_all_drains_queue():
    sched = EventScheduler()
    fired = []
    sched.schedule(5.0, fired.append, "a")
    sched.schedule(1.0, fired.append, "b")
    n = sched.run_all()
    assert n == 2
    assert fired == ["b", "a"]
    assert sched.pending() == 0


def test_run_all_guards_against_infinite_loops():
    sched = EventScheduler()

    def reschedule():
        sched.schedule(1.0, reschedule)

    sched.schedule(1.0, reschedule)
    with pytest.raises(RuntimeError):
        sched.run_all(max_events=50)


def test_events_fire_late_when_clock_ran_ahead():
    """The clock is shared with the transport, which can advance it past
    a queued event's due time; the event must fire late, not crash."""
    clock = VirtualClock()
    sched = EventScheduler(clock)
    seen = []
    sched.schedule(5.0, lambda: seen.append(clock.now()))
    clock.advance(9.0)  # transport traffic ran the clock ahead
    sched.run_until(10.0)
    assert seen == [9.0]
    assert clock.now() == 10.0


def test_run_all_with_clock_ahead():
    clock = VirtualClock()
    sched = EventScheduler(clock)
    sched.schedule(1.0, lambda: None)
    clock.advance(3.0)
    assert sched.run_all() == 1


def test_fired_counter():
    sched = EventScheduler()
    sched.schedule(1.0, lambda: None)
    sched.schedule(2.0, lambda: None)
    sched.run_until(3.0)
    assert sched.fired == 2
