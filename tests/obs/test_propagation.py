"""Trace context survives the awkward paths: retries, dedup replays,
crash-recovery replays.

These are the propagation edges the span model exists for — a timeline
where each retry attempt, replayed reply, or post-crash resolution shows
up under (or linked to) the operation that caused it.
"""

import pytest

from repro.device.resource import ResourceObject
from repro.net.retry import RetryPolicy
from repro.txn.coordinator import AND, Participant
from repro.util.errors import CoordinatorCrashed
from repro.world import SyDWorld


def make_world(retry=True):
    # Directory cache on, warmed by one untraced call, so the spans
    # inside a test's root span are exactly the operation under test —
    # no directory-lookup rpc legs muddying the filters.
    world = SyDWorld(seed=5, directory_cache=True)
    for user in ("a", "b"):
        node = world.add_node(user)
        obj = ResourceObject(f"{user}_res", node.store, node.locks)
        node.listener.publish_object(obj, user_id=user, service="res")
        obj.add("slot1")
    if retry:
        world.set_retry_policy(RetryPolicy(max_attempts=4))
    world.node("a").engine.execute("b", "res", "read", "slot1")
    return world


def spans_named(world, name):
    return [s for s in world.tracer.spans() if s.name == name]


class TestCrossNodeContext:
    def test_handler_work_is_a_child_of_the_callers_rpc(self):
        world = make_world(retry=False)
        with world.tracer.span("op", "test") as root:
            world.node("a").engine.execute("b", "res", "read", "slot1")
        (handle,) = [
            s for s in world.tracer.spans()
            if s.name.startswith("handle:") and s.trace_id == root.trace_id
        ]
        (rpc,) = [
            s for s in spans_named(world, "rpc:invoke")
            if s.trace_id == root.trace_id
        ]
        # The handler span was recorded on node b but belongs to the
        # caller's trace, parented on the rpc leg that carried it.
        assert handle.node == world.node("b").node_id
        assert handle.trace_id == root.trace_id
        assert handle.parent_id == rpc.span_id
        assert handle.attrs["verdict"] == "execute"


class TestRetryPropagation:
    def test_every_attempt_stays_in_the_original_trace(self):
        world = make_world()
        b_id = world.node("b").node_id
        dropped = {"left": 1}
        world.transport.faults.add_drop_rule(
            lambda m: not m.is_reply
            and m.dst == b_id
            and dropped.pop("left", None) is not None
        )
        with world.tracer.span("op", "test") as root:
            world.node("a").engine.execute("b", "res", "set_status", "slot1", "busy")

        calls = [s for s in spans_named(world, "net.call") if s.trace_id == root.trace_id]
        (call,) = calls
        assert call.attrs["attempts"] == 2
        attempts = [
            s for s in spans_named(world, "net.attempt")
            if s.parent_id == call.span_id
        ]
        # Both attempts recorded, numbered, in the same trace.
        assert [s.attrs["attempt"] for s in attempts] == [1, 2]
        assert {s.trace_id for s in attempts} == {root.trace_id}
        # The first attempt's rpc leg failed and says so.
        first_rpc = [s for s in world.tracer.spans()
                     if s.parent_id == attempts[0].span_id]
        assert first_rpc and first_rpc[0].status == "MessageDropped"

    def test_exhausted_call_is_marked(self):
        world = make_world()
        b_id = world.node("b").node_id
        world.transport.faults.add_drop_rule(
            lambda m: not m.is_reply and m.dst == b_id
        )
        from repro.util.errors import MessageDropped

        with world.tracer.span("op", "test") as root:
            with pytest.raises(MessageDropped):
                world.node("a").engine.execute("b", "res", "read", "slot1")
        (call,) = [s for s in spans_named(world, "net.call")
                   if s.trace_id == root.trace_id]
        assert call.attrs["attempts"] == 4
        assert call.attrs["exhausted"] is True
        assert call.status == "MessageDropped"


class TestDedupReplayPropagation:
    def test_replay_verdict_lands_under_the_retrying_caller(self):
        world = make_world()
        b_id = world.node("b").node_id
        dropped = {"left": 1}
        world.transport.faults.add_drop_rule(
            lambda m: m.is_reply
            and m.src == b_id
            and dropped.pop("left", None) is not None
        )
        with world.tracer.span("op", "test") as root:
            world.node("a").engine.execute("b", "res", "set_status", "slot1", "busy")
        handles = [
            s for s in world.tracer.spans()
            if s.name.startswith("handle:") and s.trace_id == root.trace_id
        ]
        verdicts = [s.attrs["verdict"] for s in handles]
        # First delivery executed; the retried delivery was answered from
        # the reply cache — and both are children of the same trace.
        assert verdicts == ["execute", "replay"]
        assert world.node("b").listener.replays == 1


class TestTerminationSweepSpans:
    def test_sweep_opens_a_span_only_when_marks_are_stale(self):
        from repro.calendar.app import SyDCalendarApp

        world = SyDWorld(seed=29, directory_cache=True)
        app = SyDCalendarApp(world)
        for user in ("u0", "u1"):
            app.add_user(user)
        # A mark from a coordinator that never logged a commit.
        owner = f"txn-{app.node('u0').engine.node_id}-42"
        app.node("u1").locks.try_lock("slot-a", owner)

        # Inside the lease: the sweep is a cheap no-op, no span at all.
        assert app.service("u1").terminate_stale_marks()["released"] == 0
        assert spans_named(world, "cal.terminate_sweep") == []

        world.run_for(25.0)  # past the 20 s default lease
        assert app.service("u1").terminate_stale_marks()["released"] == 1
        (sweep,) = spans_named(world, "cal.terminate_sweep")
        # A root trace of its own, annotated with what it found and did.
        assert sweep.parent_id is None
        assert sweep.attrs["stale"] == 1
        assert sweep.attrs["released"] == 1


class TestRecoveryPropagation:
    def _trio_world(self):
        world = SyDWorld(seed=7)
        nodes = {}
        for user in ("a", "b", "c"):
            node = world.add_node(user)
            obj = ResourceObject(f"{user}_res", node.store, node.locks)
            node.listener.publish_object(obj, user_id=user, service="res")
            obj.add("slot1")
            nodes[user] = node
        return world, nodes

    def test_replay_span_links_back_to_the_original_trace(self):
        world, nodes = self._trio_world()
        a = nodes["a"]
        part = lambda u: Participant(u, "slot1", "res")
        a.coordinator.arm_crash("after-decide")
        with pytest.raises(CoordinatorCrashed):
            a.coordinator.execute(part("a"), [part("b"), part("c")], AND)
        txn = f"txn-{a.engine.node_id}-{a.coordinator._txn_counter}"
        origin = a.coordinator.txn_traces[txn]

        world.restart("a")

        (recover,) = spans_named(world, "txn.recover")
        (replay,) = spans_named(world, "txn.replay")
        # The recovery sweep is its own root trace (the original span
        # closed when the coordinator died) ...
        assert recover.parent_id is None
        assert recover.trace_id != origin
        # ... but the replay names the trace that started the txn, read
        # back from the durable BEGIN record.
        assert replay.parent_id == recover.span_id
        assert replay.attrs["origin_trace"] == origin
        assert replay.attrs["resolution"] == "commit"
        assert replay.attrs["txn"] == txn
        # The original negotiation recorded its crash.
        (negotiate,) = [s for s in spans_named(world, "txn.negotiate")
                        if s.trace_id == origin]
        assert negotiate.status == "CoordinatorCrashed"
