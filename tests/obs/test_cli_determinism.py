"""The obs CLI's exports are byte-identical across runs and hash seeds.

Every rendering path the CLI exposes — the metrics registry dump, the
timeline JSON, the attribution export and the SLO report — must not
depend on dict iteration order, so the tests drive real subprocesses
with *different* ``PYTHONHASHSEED`` values and compare bytes.
"""

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent.parent


def run_obs(tmp_path, name, hashseed, *extra):
    out = tmp_path / name
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = str(REPO / "src")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro", "obs",
            "--episode", "0", "--seed", "7", "--profile", "gray",
            "--users", "4", "--ops", "10", "--duration", "40",
            "--out", str(out), *extra,
        ],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO,
        check=True,
    )
    return out, proc.stdout


class TestHashSeedIndependence:
    def test_metrics_and_slo_output_identical_across_hash_seeds(self, tmp_path):
        _, stdout_a = run_obs(tmp_path, "a", 1, "--metrics", "--slo")
        _, stdout_b = run_obs(tmp_path, "b", 4242, "--metrics", "--slo")

        def stable(text):
            # Drop the one line that names the per-run output directory.
            return [l for l in text.splitlines() if not l.startswith("timeline:")]

        assert stable(stdout_a) == stable(stdout_b)
        assert "slo cal.schedule" in stdout_a
        assert "digest" in stdout_a or "hist" in stdout_a

    def test_attribution_and_timeline_files_identical_across_hash_seeds(
        self, tmp_path
    ):
        out_a, _ = run_obs(tmp_path, "a", 7, "--attribute")
        out_b, _ = run_obs(tmp_path, "b", 99, "--attribute")
        assert (out_a / "attribution.json").read_bytes() == (
            out_b / "attribution.json"
        ).read_bytes()
        assert (out_a / "timeline.trace.json").read_bytes() == (
            out_b / "timeline.trace.json"
        ).read_bytes()
