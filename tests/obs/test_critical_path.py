"""Critical-path extraction and exact latency attribution.

Synthetic span forests pin the algorithm (partition exactness, category
carves, retry/hedge path resolution); one live traced chaos episode
pins the integration (every root fully attributed, categories closed).
"""

import pytest

from repro.obs.critical import (
    CATEGORIES,
    attribute,
    attribute_trace,
    category_of,
    critical_path,
    find_root,
    linked_roots,
    self_times,
)
from repro.util.trace import Span


def mk(span_id, trace_id, parent, name, start, end, node="n", **attrs):
    return Span(
        span_id=span_id,
        trace_id=trace_id,
        parent_id=parent,
        name=name,
        node=node,
        start=start,
        end=end,
        attrs=attrs,
    )


class TestPartition:
    def test_self_times_cover_the_root_exactly(self):
        spans = [
            mk("s1", "t1", None, "cal.schedule", 0.0, 10.0),
            mk("s2", "t1", "s1", "rpc:invoke", 1.0, 4.0),
            mk("s3", "t1", "s1", "rpc:invoke", 5.0, 9.0),
            mk("s4", "t1", "s3", "handle:x", 6.0, 8.0),
        ]
        acc = self_times(spans, spans[0])
        assert acc["s1"] == pytest.approx(3.0)  # 0-1, 4-5, 9-10
        assert acc["s2"] == pytest.approx(3.0)
        assert acc["s3"] == pytest.approx(2.0)  # 5-6, 8-9
        assert acc["s4"] == pytest.approx(2.0)
        assert sum(acc.values()) == pytest.approx(10.0)

    def test_attribution_sums_to_elapsed(self):
        spans = [
            mk("s1", "t1", None, "cal.schedule", 0.0, 10.0),
            mk("s2", "t1", "s1", "rpc:invoke", 1.0, 4.0),
            mk("s3", "t1", "s1", "net.call", 4.0, 9.0),
        ]
        attr = attribute_trace(spans, "t1")
        assert attr.elapsed == pytest.approx(10.0)
        assert attr.total == pytest.approx(10.0)
        assert abs(attr.coverage - 1.0) <= 1e-3
        assert set(attr.categories) == set(CATEGORIES)

    def test_async_straggler_outside_parent_contributes_nothing(self):
        # A redelivery re-entering the trace after the root closed owns
        # none of the root's elapsed time.
        spans = [
            mk("s1", "t1", None, "cal.schedule", 0.0, 5.0),
            mk("s2", "t1", "s1", "net.redeliver", 20.0, 21.0, deferred=True),
        ]
        attr = attribute_trace(spans, "t1")
        assert attr.total == pytest.approx(5.0)
        assert attr.categories["handler"] == pytest.approx(5.0)
        assert attr.categories["net.transit"] == 0.0

    def test_open_children_are_ignored(self):
        spans = [
            mk("s1", "t1", None, "cal.schedule", 0.0, 5.0),
            mk("s2", "t1", "s1", "rpc:invoke", 1.0, None),
        ]
        attr = attribute_trace(spans, "t1")
        assert attr.categories["handler"] == pytest.approx(5.0)


class TestCategories:
    def test_category_table(self):
        cases = {
            "rpc:invoke": "net.transit",
            "send:event": "net.transit",
            "net.batch": "net.transit",
            "net.redeliver": "net.transit",
            "net.attempt": "net.transit",
            "net.call": "retry.backoff",
            "net.retry_wave": "retry.backoff",
            "txn.lock": "lock.wait",
            "txn.admission": "queue",
            "handle:x": "handler",
            "cal.schedule": "handler",
            "txn.negotiate": "handler",
            "chaos.step": "handler",
            "mystery": "other",
        }
        for name, want in cases.items():
            assert category_of(mk("s", "t", None, name, 0, 1)) == want

    def test_stall_attr_is_carved_out_of_transit(self):
        spans = [
            mk("s1", "t1", None, "cal.schedule", 0.0, 10.0),
            mk("s2", "t1", "s1", "rpc:invoke", 0.0, 10.0, stall=4.0),
        ]
        attr = attribute_trace(spans, "t1")
        assert attr.categories["stall"] == pytest.approx(4.0)
        assert attr.categories["net.transit"] == pytest.approx(6.0)
        assert attr.total == pytest.approx(10.0)

    def test_deadline_outcome_is_all_stall(self):
        spans = [
            mk("s1", "t1", None, "cal.schedule", 0.0, 10.0),
            mk("s2", "t1", "s1", "rpc:invoke", 0.0, 10.0,
               outcome="deadline", stall=1.0),
        ]
        attr = attribute_trace(spans, "t1")
        # The caller sat out its whole budget: the entire wire self
        # time is stall, not just the stamped stall slice.
        assert attr.categories["stall"] == pytest.approx(10.0)
        assert attr.categories["net.transit"] == 0.0

    def test_admission_wait_is_carved_out_of_negotiate(self):
        spans = [
            mk("s1", "t1", None, "txn.negotiate", 0.0, 10.0, admission_wait=3.0),
        ]
        attr = attribute_trace(spans, "t1")
        assert attr.categories["queue"] == pytest.approx(3.0)
        assert attr.categories["handler"] == pytest.approx(7.0)

    def test_lock_spans_land_in_lock_wait(self):
        spans = [
            mk("s1", "t1", None, "cal.schedule", 0.0, 10.0),
            mk("s2", "t1", "s1", "txn.lock", 2.0, 5.0, outcome="acquired"),
        ]
        attr = attribute_trace(spans, "t1")
        assert attr.categories["lock.wait"] == pytest.approx(3.0)


def retry_wave_forest():
    """cal.schedule -> net.call with three attempts and backoff gaps."""
    return [
        mk("s1", "t1", None, "cal.schedule", 0.0, 10.0),
        mk("s2", "t1", "s1", "net.call", 0.0, 10.0, backoff_total=3.0),
        mk("s3", "t1", "s2", "net.attempt", 0.0, 2.0, attempt=1),
        mk("s4", "t1", "s2", "net.attempt", 3.0, 5.0, attempt=2),
        mk("s5", "t1", "s2", "net.attempt", 6.0, 10.0, attempt=3),
        mk("s6", "t1", "s5", "rpc:invoke", 6.0, 10.0),
    ]


def hedged_forest():
    """Two hedge legs; the later-ending winner leg decides the parent."""
    return [
        mk("s1", "t1", None, "cal.schedule", 0.0, 5.0),
        mk("s2", "t1", "s1", "rpc:lookup", 0.0, 5.0,
           hedge="shard-b", winner="backup", outcome="hedge_win"),
        # Both leg handlers ran instantaneously at their send times —
        # the backup (winner) leg's handler started later.
        mk("s3", "t1", "s2", "handle:lookup", 0.5, 0.5, node="shard-a"),
        mk("s4", "t1", "s2", "handle:lookup", 2.0, 2.0, node="shard-b"),
    ]


class TestCriticalPath:
    def test_retry_path_goes_through_the_last_attempt(self):
        path = critical_path(retry_wave_forest(), find_root(retry_wave_forest(), "t1"))
        assert [step.span_id for step in path] == ["s1", "s2", "s5", "s6"]
        assert [step.depth for step in path] == [0, 1, 2, 3]
        # Backoff sleeps are the net.call hop's self time.
        attr = attribute_trace(retry_wave_forest(), "t1")
        assert attr.categories["retry.backoff"] == pytest.approx(2.0)  # 2-3, 5-6
        assert attr.categories["net.transit"] == pytest.approx(8.0)

    def test_hedged_path_follows_the_winner_leg(self):
        spans = hedged_forest()
        path = critical_path(spans, find_root(spans, "t1"))
        # The path descends into the later-ending (winner) leg handler.
        assert [step.span_id for step in path] == ["s1", "s2", "s4"]
        assert path[-1].node == "shard-b"

    def test_children_starting_after_parent_end_are_excluded(self):
        spans = [
            mk("s1", "t1", None, "cal.schedule", 0.0, 5.0),
            mk("s2", "t1", "s1", "rpc:invoke", 1.0, 4.0),
            mk("s3", "t1", "s1", "net.redeliver", 20.0, 21.0, deferred=True),
        ]
        path = critical_path(spans, find_root(spans, "t1"))
        assert [step.span_id for step in path] == ["s1", "s2"]

    def test_dedup_replay_verdict_tree_attributes_cleanly(self):
        # A replayed duplicate: the handler short-circuits (zero self
        # time) and the wire hop owns the window.
        spans = [
            mk("s1", "t1", None, "cal.schedule", 0.0, 4.0),
            mk("s2", "t1", "s1", "rpc:invoke", 0.0, 4.0),
            mk("s3", "t1", "s2", "handle:confirm", 2.0, 2.0, verdict="REPLAY"),
        ]
        attr = attribute_trace(spans, "t1")
        assert attr.categories["net.transit"] == pytest.approx(4.0)
        assert attr.categories["handler"] == 0.0
        path = critical_path(spans, find_root(spans, "t1"))
        assert [step.name for step in path] == [
            "cal.schedule", "rpc:invoke", "handle:confirm"
        ]


class TestLinkedRoots:
    def test_origin_trace_links_replay_trees(self):
        spans = [
            mk("s1", "t1", None, "cal.schedule", 0.0, 5.0),
            mk("s2", "t2", None, "txn.replay", 30.0, 32.0, origin_trace="t1"),
            mk("s3", "t3", None, "txn.replay", 40.0, 41.0, origin_trace="t9"),
        ]
        links = linked_roots(spans, "t1")
        assert [s.span_id for s in links] == ["s2"]
        # The linked tree is attributed as its own root, never folded in.
        attr = attribute(spans, links[0])
        assert attr.elapsed == pytest.approx(2.0)


class TestLiveEpisode:
    @pytest.fixture(scope="class")
    def gray_spans(self):
        from repro.chaos import ChaosCampaign, ChaosConfig

        # Full-size episode: the reduced sweeps don't reliably land a
        # stall fault on a traced path, and this class asserts they do.
        config = ChaosConfig(seed=7, profile="gray", shrink=False)
        campaign = ChaosCampaign(config)
        campaign.run_episode(0, quiet=True)
        return campaign.last_world.tracer.spans()

    def test_every_root_is_fully_attributed(self, gray_spans):
        roots = [s for s in gray_spans if s.parent_id is None and s.end is not None]
        assert roots
        for root in roots:
            attr = attribute(gray_spans, root)
            if attr.elapsed > 0:
                assert abs(attr.coverage - 1.0) <= 1e-3, (
                    f"{root.trace_id}/{root.name}: coverage {attr.coverage}"
                )

    def test_gray_tail_contains_stall_time(self, gray_spans):
        roots = [s for s in gray_spans if s.parent_id is None and s.end is not None]
        total_stall = sum(
            attribute(gray_spans, root).categories["stall"] for root in roots
        )
        assert total_stall > 0.0

    def test_critical_path_is_well_formed_on_the_slowest_trace(self, gray_spans):
        roots = [s for s in gray_spans if s.parent_id is None and s.end is not None]
        slowest = max(roots, key=lambda s: s.end - s.start)
        path = critical_path(gray_spans, slowest)
        assert path[0].span_id == slowest.span_id
        for prev, step in zip(path, path[1:]):
            assert step.depth == prev.depth + 1
            assert step.end <= prev.end + 1e-9
