"""SLO specs: evaluation against the registry, rendering, reporting."""

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import DEFAULT_SLOS, SloSpec, evaluate, render_report
from repro.util.clock import VirtualClock


def registry_with(op, latencies, errors=0, node="n1"):
    clock = VirtualClock()
    metrics = MetricsRegistry(clock)
    for latency in latencies:
        metrics.record_value(node, f"op.{op}", latency)
        metrics.inc(node, f"op.{op}.calls")
    for _ in range(errors):
        metrics.inc(node, f"op.{op}.calls")
        metrics.inc(node, f"op.{op}.errors")
        metrics.record_value(node, f"op.{op}", 0.1)
    return metrics


class TestEvaluate:
    def test_within_budget_is_ok(self):
        metrics = registry_with("cal.schedule", [0.2, 0.5, 1.0])
        spec = SloSpec("cal.schedule", quantile=0.99, latency=2.5, error_rate=0.01)
        (result,) = evaluate(metrics, [spec])
        assert result.ok and result.latency_ok and result.error_rate_ok
        assert result.calls == 3 and result.errors == 0

    def test_latency_breach(self):
        metrics = registry_with("cal.schedule", [0.2, 0.5, 9.0])
        spec = SloSpec("cal.schedule", latency=2.5)
        (result,) = evaluate(metrics, [spec])
        assert not result.latency_ok and result.error_rate_ok
        assert not result.ok
        assert "BREACH" in result.render()
        assert "> 2.5s" in result.render()

    def test_error_rate_breach(self):
        metrics = registry_with("cal.cancel", [0.2] * 9, errors=1)
        spec = SloSpec("cal.cancel", latency=1.5, error_rate=0.01)
        (result,) = evaluate(metrics, [spec])
        assert result.latency_ok and not result.error_rate_ok
        assert result.observed_error_rate == 0.1

    def test_no_traffic_is_vacuously_ok(self):
        clock = VirtualClock()
        (result,) = evaluate(MetricsRegistry(clock), [SloSpec("cal.move")])
        assert result.ok and result.calls == 0
        assert result.render() == "slo cal.move ok (no traffic)"

    def test_digests_merge_across_nodes(self):
        clock = VirtualClock()
        metrics = MetricsRegistry(clock)
        # Fast calls on one node, the slow outlier on another: the SLO
        # is a fleet-level promise, so the breach must still surface.
        for _ in range(5):
            metrics.record_value("n1", "op.cal.schedule", 0.2)
            metrics.inc("n1", "op.cal.schedule.calls")
        metrics.record_value("n2", "op.cal.schedule", 50.0)
        metrics.inc("n2", "op.cal.schedule.calls")
        (result,) = evaluate(metrics, [SloSpec("cal.schedule", latency=2.5)])
        assert not result.latency_ok
        assert result.calls == 6

    def test_default_specs_cover_the_calendar_ops(self):
        assert {spec.op for spec in DEFAULT_SLOS} == {
            "cal.schedule", "cal.move", "cal.cancel",
            "cal.confirm", "cal.drop_out", "cal.reconcile",
        }


class TestRendering:
    def test_report_is_deterministic(self):
        metrics = registry_with("cal.schedule", [0.2, 5.0], errors=1)
        a = render_report(evaluate(metrics))
        b = render_report(evaluate(metrics))
        assert a == b
        assert a.count("\n") == len(DEFAULT_SLOS) - 1

    def test_to_dict_round_trips_the_verdict(self):
        metrics = registry_with("cal.schedule", [9.0])
        (result,) = evaluate(metrics, [SloSpec("cal.schedule", latency=2.5)])
        doc = result.to_dict()
        assert doc["ok"] is False
        assert doc["calls"] == 1
        assert doc["latency_bound"] == 2.5

    def test_describe_states_the_budget(self):
        spec = SloSpec("cal.schedule", quantile=0.99, latency=2.5, error_rate=0.01)
        assert spec.describe() == "cal.schedule: p99 <= 2.5s, error_rate <= 1%"


class TestLiveEpisodeReport:
    def test_chaos_episode_carries_slo_results(self):
        from repro.chaos import ChaosCampaign, ChaosConfig

        config = ChaosConfig(
            seed=7, users=4, ops=10, duration=40.0, profile="classic", shrink=False
        )
        campaign = ChaosCampaign(config)
        episode = campaign.run_episode(0, quiet=True)
        assert len(episode.slo) == len(DEFAULT_SLOS)
        # Reported, never enforced: a breach must not fail the episode.
        assert episode.ok or episode.violations
        rendered = [r.render() for r in episode.slo]
        assert all(line.startswith("slo ") for line in rendered)
        # The lines also land in the episode log, in spec order.
        log_text = "\n".join(episode.log)
        for line in rendered:
            assert line in log_text
