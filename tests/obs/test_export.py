"""Timeline exporters: Chrome trace JSON, span tree, determinism."""

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    dumps_chrome_trace,
    render_span_tree,
    validate_chrome_trace,
    write_timeline,
)
from repro.util.clock import VirtualClock
from repro.util.trace import Tracer


def sample_spans():
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("outer", "node-a", op="x"):
        clock.advance(0.010)
        with tracer.span("inner", "node-b"):
            clock.advance(0.005)
    with tracer.span("other", "node-a"):
        clock.advance(0.001)
    return tracer.spans()


class TestChromeTrace:
    def test_document_shape(self):
        doc = chrome_trace(sample_spans(), label="unit")
        validate_chrome_trace(doc)
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        slices = [e for e in events if e["ph"] == "X"]
        # One lane per node, named for the UI.
        assert {m["args"]["name"] for m in meta} == {"node:node-a", "node:node-b"}
        assert len(slices) == 3
        outer = next(e for e in slices if e["name"] == "outer")
        inner = next(e for e in slices if e["name"] == "inner")
        # Virtual seconds became microseconds.
        assert outer["ts"] == 0.0 and outer["dur"] == 15000.0
        assert inner["ts"] == 10000.0
        # Causality and attrs ride in args.
        assert inner["args"]["parent"] == outer["args"]["span_id"]
        assert inner["cat"] == outer["cat"]
        assert outer["args"]["op"] == "x"
        assert doc["otherData"]["source"] == "unit"

    def test_open_spans_are_skipped(self):
        tracer = Tracer()
        tracer.start_span("never-closed", "n")
        doc = chrome_trace(tracer.spans())
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []

    def test_serialisation_is_deterministic(self):
        a = dumps_chrome_trace(chrome_trace(sample_spans()))
        b = dumps_chrome_trace(chrome_trace(sample_spans()))
        assert a == b
        json.loads(a)  # round-trips

    def test_write_timeline_returns_path(self, tmp_path):
        path = tmp_path / "t.trace.json"
        returned = write_timeline(str(path), sample_spans())
        assert returned == str(path)
        doc = json.loads(path.read_text())
        validate_chrome_trace(doc)


class TestValidate:
    def test_accepts_our_own_output(self):
        validate_chrome_trace(chrome_trace(sample_spans()))

    @pytest.mark.parametrize(
        "doc,match",
        [
            ({}, "missing traceEvents"),
            ({"traceEvents": {}}, "must be a list"),
            ({"traceEvents": ["x"]}, "not an object"),
            ({"traceEvents": [{"ph": "B", "pid": 1, "tid": 1, "name": "n"}]},
             "unsupported ph"),
            ({"traceEvents": [{"ph": "M", "pid": "1", "tid": 1, "name": "n"}]},
             "pid/tid"),
            ({"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "name": "n",
                               "ts": 0.0, "dur": -1.0, "args": {}}]},
             "negative dur"),
            ({"traceEvents": [{"ph": "X", "pid": 1, "tid": 1, "name": "n",
                               "ts": 0.0, "dur": 1.0, "args": None}]},
             "args"),
        ],
    )
    def test_rejects_malformed_documents(self, doc, match):
        with pytest.raises(ValueError, match=match):
            validate_chrome_trace(doc)

    @staticmethod
    def _slice(span_id, ts, dur, tid=1, parent=None, **extra):
        args = {"span_id": span_id, "trace_id": "t1", "status": "ok", **extra}
        if parent is not None:
            args["parent"] = parent
        return {"ph": "X", "pid": 1, "tid": tid, "name": span_id,
                "cat": "t1", "ts": ts, "dur": dur, "args": args}

    def test_rejects_child_escaping_parent(self):
        doc = {"traceEvents": [
            self._slice("sA", 0.0, 100.0),
            self._slice("sB", 50.0, 200.0, parent="sA"),
        ]}
        with pytest.raises(ValueError, match="escapes parent"):
            validate_chrome_trace(doc)

    def test_deferred_children_are_exempt_from_containment(self):
        # Scheduler-fired redeliveries legitimately re-enter traces
        # whose spans closed long ago; they carry args.deferred.
        doc = {"traceEvents": [
            self._slice("sA", 0.0, 100.0),
            self._slice("sB", 5000.0, 10.0, parent="sA", deferred=True),
        ]}
        validate_chrome_trace(doc)

    def test_containment_allows_rounding_slack(self):
        doc = {"traceEvents": [
            self._slice("sA", 0.0, 100.0),
            self._slice("sB", -0.001, 100.002, parent="sA", tid=2),
        ]}
        validate_chrome_trace(doc)

    def test_rejects_backwards_ts_within_a_lane(self):
        doc = {"traceEvents": [
            self._slice("sA", 50.0, 10.0),
            self._slice("sB", 0.0, 10.0),
        ]}
        with pytest.raises(ValueError, match="goes backwards"):
            validate_chrome_trace(doc)

    def test_lanes_are_independent_for_monotonicity(self):
        doc = {"traceEvents": [
            self._slice("sA", 50.0, 10.0, tid=1),
            self._slice("sB", 0.0, 10.0, tid=2),
        ]}
        validate_chrome_trace(doc)


class TestSpanTree:
    def test_children_indent_under_parents(self):
        tree = render_span_tree(sample_spans())
        lines = tree.splitlines()
        assert lines[0].startswith("outer [node-a]")
        assert lines[1].startswith("  inner [node-b]")
        assert lines[2].startswith("other [node-a]")
        assert "{op=x}" in lines[0]

    def test_orphans_promote_to_roots(self):
        spans = sample_spans()
        # Drop the root: its child's parent id no longer resolves.
        orphaned = [s for s in spans if s.name != "outer"]
        tree = render_span_tree(orphaned)
        assert tree.splitlines()[0].startswith("inner")

    def test_error_status_is_flagged(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("bad", "n"):
                raise RuntimeError("x")
        assert "!RuntimeError" in render_span_tree(tracer.spans())
