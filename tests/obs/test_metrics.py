"""MetricsRegistry semantics and its integration into the world."""

from collections import Counter

from repro.device.resource import ResourceObject
from repro.net.stats import NetworkStats
from repro.obs.metrics import MetricsRegistry, latency_bucket
from repro.util.clock import VirtualClock
from repro.world import SyDWorld


class TestRegistry:
    def test_counters_accumulate_per_node(self):
        reg = MetricsRegistry()
        reg.inc("a", "kernel.invokes")
        reg.inc("a", "kernel.invokes", 2)
        reg.inc("b", "kernel.invokes")
        assert reg.counter("a", "kernel.invokes") == 3
        assert reg.counter("b", "kernel.invokes") == 1
        assert reg.counter("c", "kernel.invokes") == 0

    def test_gauges_last_write_wins(self):
        reg = MetricsRegistry()
        assert reg.gauge("a", "txn.locks_held") is None
        reg.set_gauge("a", "txn.locks_held", 3)
        reg.set_gauge("a", "txn.locks_held", 1)
        assert reg.gauge("a", "txn.locks_held") == 1

    def test_histogram_buckets_are_power_of_two_ms(self):
        reg = MetricsRegistry()
        for delay in (0.0005, 0.003, 0.020, 0.020):
            reg.observe("a", "net.rpc", delay)
        hist = reg.histogram("a", "net.rpc")
        assert hist["count"] == 4
        assert hist["buckets"] == Counter({"<=1ms": 1, "<=4ms": 1, "<=32ms": 2})
        assert abs(hist["sum"] - 0.0435) < 1e-9
        # Unset histograms read as empty, not KeyError.
        assert reg.histogram("a", "nope")["count"] == 0

    def test_timer_observes_virtual_time(self):
        clock = VirtualClock()
        reg = MetricsRegistry(clock)
        with reg.timer("a", "kernel.dispatch.read"):
            clock.advance(0.002)
        hist = reg.histogram("a", "kernel.dispatch.read")
        assert hist["count"] == 1
        assert hist["buckets"] == Counter({"<=2ms": 1})

    def test_snapshot_is_sorted_and_jsonable(self):
        import json

        reg = MetricsRegistry()
        reg.inc("b", "x")
        reg.inc("a", "x")
        reg.set_gauge("a", "g", 1.5)
        reg.observe("a", "h", 0.004)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a/x", "b/x"]
        json.dumps(snap)  # no Counter leaks through
        rendered = reg.render()
        assert "counter a/x = 1" in rendered
        assert "gauge   a/g = 1.5" in rendered
        assert "hist    a/h count=1" in rendered

    def test_reset_node_only_drops_that_node(self):
        reg = MetricsRegistry()
        reg.inc("a", "x")
        reg.inc("b", "x")
        reg.reset_node("a")
        assert reg.counter("a", "x") == 0
        assert reg.counter("b", "x") == 1

    def test_latency_bucket_edges(self):
        assert latency_bucket(0.001) == "<=1ms"
        assert latency_bucket(0.0011) == "<=2ms"
        assert latency_bucket(0.002) == "<=2ms"
        assert latency_bucket(0.1) == "<=128ms"

    def test_histograms_keep_exact_min_max_below_bucket_resolution(self):
        # Regression: two tails in the same power-of-two bucket used to
        # be indistinguishable — 1.1s and 2.0s are both "<=2048ms". The
        # exact min/max must expose the true extremes regardless.
        reg = MetricsRegistry()
        for delay in (1.1, 1.7, 2.0):
            reg.observe("a", "net.rpc", delay)
        hist = reg.histogram("a", "net.rpc")
        assert hist["buckets"] == Counter({"<=2048ms": 3})
        assert hist["min"] == 1.1
        assert hist["max"] == 2.0
        # Unset histograms report None extremes, and the snapshot/render
        # carry them alongside the buckets.
        assert reg.histogram("a", "nope")["min"] is None
        assert "min=1.1" in reg.render() and "max=2" in reg.render()

    def test_record_value_windows_by_virtual_time(self):
        clock = VirtualClock()
        reg = MetricsRegistry(clock)
        reg.record_value("a", "op.cal.schedule", 0.5)
        clock.advance(reg.digest_window + 1.0)
        reg.record_value("a", "op.cal.schedule", 3.0)
        windows = reg.digest_windows("a", "op.cal.schedule")
        assert len(windows) == 2
        merged = reg.merged_digest("op.cal.schedule")
        assert merged.count == 2
        assert merged.min == 0.5 and merged.max == 3.0

    def test_merged_digest_spans_nodes(self):
        reg = MetricsRegistry()
        reg.record_value("a", "op.cal.cancel", 0.2)
        reg.record_value("b", "op.cal.cancel", 4.0)
        merged = reg.merged_digest("op.cal.cancel")
        assert merged.count == 2 and merged.max == 4.0
        assert "op.cal.cancel" in reg.digest_names()


class TestNetworkStatsView:
    def test_stats_land_in_the_shared_registry(self):
        reg = MetricsRegistry()
        stats = NetworkStats(reg)
        stats.record_delivery("invoke", 100, 0.02, is_reply=False)
        stats.record_delivery("reply", 40, 0.01, is_reply=True)
        assert stats.messages == 2 and stats.replies == 1
        assert stats.bytes == 140
        assert reg.counter("net", "net.messages") == 2
        assert reg.counter("net", "net.by_kind.invoke") == 1
        assert stats.by_kind == Counter({"invoke": 1, "reply": 1})

    def test_standalone_stats_own_a_private_registry(self):
        stats = NetworkStats()
        stats.record_retry()
        assert stats.retries == 1
        assert stats.registry.counter("net", "net.retries") == 1


class TestWorldIntegration:
    def _world(self):
        world = SyDWorld(seed=3, directory_cache=True)
        for user in ("a", "b"):
            node = world.add_node(user)
            obj = ResourceObject(f"{user}_res", node.store, node.locks)
            node.listener.publish_object(obj, user_id=user, service="res")
            obj.add("slot1")
        return world

    def test_traffic_kernel_and_cache_metrics_share_one_registry(self):
        world = self._world()
        node = world.node("a")
        node.engine.execute("b", "res", "read", "slot1")
        node.engine.execute("b", "res", "read", "slot1")
        reg = world.metrics
        # Network counters under the pseudo-node mirror world.stats.
        assert reg.counter("net", "net.messages") == world.stats.messages > 0
        # The remote listener timed its dispatches (keyed by node id —
        # the listener doesn't know user names).
        b_id = world.node("b").node_id
        assert reg.histogram(b_id, "kernel.dispatch.read")["count"] == 2
        # The second lookup hit the directory cache.
        assert reg.counter("a", "dir.cache_hits") >= 1
        snap = reg.snapshot()
        assert any(k.startswith("net/") for k in snap["counters"])
        assert any(k.startswith(f"{b_id}/") for k in snap["counters"])
