"""QuantileDigest: relative-error bounds, exact extremes, merge, determinism."""

import math
import random

import pytest

from repro.obs.digest import DEFAULT_ALPHA, QuantileDigest


class TestAccuracy:
    def test_quantiles_within_relative_error(self):
        rng = random.Random(42)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(5000)]
        digest = QuantileDigest()
        for v in values:
            digest.add(v)
        values.sort()
        for q in (0.01, 0.25, 0.5, 0.9, 0.99, 0.999):
            # Same nearest-rank convention as QuantileDigest.quantile.
            rank = max(1, math.ceil(q * len(values)))
            exact = values[rank - 1]
            got = digest.quantile(q)
            assert abs(got - exact) <= 2.0 * DEFAULT_ALPHA * exact + 1e-12, (
                f"q={q}: exact={exact} got={got}"
            )

    def test_extremes_and_sum_are_exact(self):
        digest = QuantileDigest()
        values = [3.5, 0.001, 700.25, 41.0]
        for v in values:
            digest.add(v)
        assert digest.min == min(values)
        assert digest.max == max(values)
        assert digest.sum == pytest.approx(sum(values))
        assert digest.count == len(values)
        assert digest.mean == pytest.approx(sum(values) / len(values))
        # Quantiles never escape the observed range.
        assert digest.min <= digest.quantile(0.0) <= digest.max
        assert digest.min <= digest.quantile(1.0) <= digest.max

    def test_zero_and_negative_values_use_the_zero_bucket(self):
        digest = QuantileDigest()
        digest.add(0.0)
        digest.add(-1.0)
        digest.add(10.0)
        assert digest.count == 3
        assert digest.min == -1.0
        assert digest.quantile(0.3) <= 0.0
        assert digest.quantile(0.99) == pytest.approx(10.0, rel=0.05)

    def test_empty_digest(self):
        digest = QuantileDigest()
        assert digest.count == 0
        assert digest.quantile(0.5) == 0.0
        assert digest.mean == 0.0


class TestMerge:
    def test_merge_equals_union(self):
        rng = random.Random(7)
        a_vals = [rng.expovariate(1.0) for _ in range(800)]
        b_vals = [rng.expovariate(0.2) for _ in range(800)]
        a, b, u = QuantileDigest(), QuantileDigest(), QuantileDigest()
        for v in a_vals:
            a.add(v)
            u.add(v)
        for v in b_vals:
            b.add(v)
            u.add(v)
        merged = QuantileDigest()
        merged.merge(a)
        merged.merge(b)
        assert merged.count == u.count
        assert merged.sum == pytest.approx(u.sum)
        assert merged.min == u.min and merged.max == u.max
        for q in (0.1, 0.5, 0.9, 0.99):
            assert merged.quantile(q) == pytest.approx(u.quantile(q))

    def test_merge_requires_same_alpha(self):
        a = QuantileDigest(alpha=0.01)
        b = QuantileDigest(alpha=0.05)
        with pytest.raises(ValueError):
            a.merge(b)


class TestSerialisation:
    def test_round_trip(self):
        digest = QuantileDigest()
        for v in (0.5, 1.5, 1.5, 200.0, 0.0):
            digest.add(v)
        clone = QuantileDigest.from_dict(digest.to_dict())
        assert clone.count == digest.count
        assert clone.min == digest.min and clone.max == digest.max
        assert clone.sum == pytest.approx(digest.sum)
        for q in (0.25, 0.5, 0.99):
            assert clone.quantile(q) == digest.quantile(q)

    def test_to_dict_is_insertion_order_independent(self):
        a, b = QuantileDigest(), QuantileDigest()
        values = [5.0, 0.01, 300.0, 5.0, 42.0]
        for v in values:
            a.add(v)
        for v in reversed(values):
            b.add(v)
        assert a.to_dict() == b.to_dict()
