"""Tests for the TEA cipher (incl. property-based roundtrips)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.security import tea
from repro.util.errors import CipherError

KEY = (0x01234567, 0x89ABCDEF, 0xFEDCBA98, 0x76543210)


class TestBlocks:
    def test_block_roundtrip(self):
        c0, c1 = tea.encrypt_block(0xDEADBEEF, 0xCAFEBABE, KEY)
        assert tea.decrypt_block(c0, c1, KEY) == (0xDEADBEEF, 0xCAFEBABE)

    def test_block_changes_value(self):
        assert tea.encrypt_block(0, 0, KEY) != (0, 0)

    def test_known_vector(self):
        """Published TEA test vector: zero key, zero plaintext."""
        # Reference: TEA with v=(0,0), k=(0,0,0,0) -> 0x41EA3A0A 0x94BAA940
        assert tea.encrypt_block(0, 0, (0, 0, 0, 0)) == (0x41EA3A0A, 0x94BAA940)

    def test_known_vector_2(self):
        # v=(0x12345678, 0x9ABCDEF0), k=(0,1,2,3)
        c = tea.encrypt_block(0x12345678, 0x9ABCDEF0, (0, 1, 2, 3))
        assert tea.decrypt_block(*c, (0, 1, 2, 3)) == (0x12345678, 0x9ABCDEF0)

    @given(v0=st.integers(0, 2**32 - 1), v1=st.integers(0, 2**32 - 1))
    def test_block_roundtrip_property(self, v0, v1):
        c0, c1 = tea.encrypt_block(v0, v1, KEY)
        assert tea.decrypt_block(c0, c1, KEY) == (v0, v1)


class TestKeyDerivation:
    def test_deterministic(self):
        assert tea.derive_key("secret") == tea.derive_key("secret")

    def test_distinct_for_distinct_passphrases(self):
        assert tea.derive_key("a") != tea.derive_key("b")

    def test_bytes_and_str_equivalent(self):
        assert tea.derive_key("x") == tea.derive_key(b"x")

    def test_four_32bit_words(self):
        key = tea.derive_key("anything")
        assert len(key) == 4
        assert all(0 <= w < 2**32 for w in key)


class TestCBC:
    def test_roundtrip(self):
        blob = tea.encrypt(b"hello world", "pass")
        assert tea.decrypt(blob, "pass") == b"hello world"

    def test_empty_plaintext(self):
        assert tea.decrypt(tea.encrypt(b"", "p"), "p") == b""

    def test_wrong_passphrase_fails(self):
        blob = tea.encrypt(b"hello world, here is a message", "right")
        with pytest.raises(CipherError):
            tea.decrypt(blob, "wrong")

    def test_deterministic_with_fixed_iv(self):
        iv = bytes(8)
        assert tea.encrypt(b"msg", "p", iv=iv) == tea.encrypt(b"msg", "p", iv=iv)

    def test_random_iv_differs(self):
        assert tea.encrypt(b"msg", "p") != tea.encrypt(b"msg", "p")

    def test_bad_iv_length(self):
        with pytest.raises(CipherError):
            tea.encrypt(b"msg", "p", iv=b"short")

    def test_truncated_ciphertext(self):
        with pytest.raises(CipherError):
            tea.decrypt(b"1234567", "p")

    def test_misaligned_ciphertext(self):
        blob = tea.encrypt(b"hello", "p")
        with pytest.raises(CipherError):
            tea.decrypt(blob[:-3], "p")

    def test_ciphertext_hides_plaintext(self):
        blob = tea.encrypt(b"AAAAAAAAAAAAAAAA", "p", iv=bytes(8))
        assert b"AAAA" not in blob

    @given(data=st.binary(max_size=200))
    def test_roundtrip_property(self, data):
        assert tea.decrypt(tea.encrypt(data, "k"), "k") == data


def test_padding_all_lengths():
    for n in range(0, 25):
        data = bytes(range(n))
        assert tea.decrypt(tea.encrypt(data, "p"), "p") == data
