"""Tests for auth tables and credential envelopes."""

import pytest

from repro.datastore.store import RelationalStore
from repro.security.auth import AUTH_TABLE, AuthTable
from repro.security.envelope import Credentials, seal, unseal
from repro.util.errors import AuthenticationError


@pytest.fixture
def auth():
    return AuthTable(RelationalStore("phil"))


class TestAuthTable:
    def test_grant_and_check(self, auth):
        auth.grant("andy", "pw")
        auth.check("andy", "pw")
        assert auth.is_authorized("andy", "pw")

    def test_wrong_password(self, auth):
        auth.grant("andy", "pw")
        with pytest.raises(AuthenticationError):
            auth.check("andy", "nope")
        assert not auth.is_authorized("andy", "nope")

    def test_unknown_user(self, auth):
        with pytest.raises(AuthenticationError):
            auth.check("ghost", "pw")

    def test_grant_updates_password(self, auth):
        auth.grant("andy", "old")
        auth.grant("andy", "new")
        assert auth.is_authorized("andy", "new")
        assert not auth.is_authorized("andy", "old")

    def test_revoke(self, auth):
        auth.grant("andy", "pw")
        assert auth.revoke("andy") is True
        assert auth.revoke("andy") is False
        assert not auth.is_authorized("andy", "pw")

    def test_authorized_users(self, auth):
        auth.grant("a", "1")
        auth.grant("b", "2")
        assert auth.authorized_users() == ["a", "b"]

    def test_passwords_stored_hashed(self, auth):
        auth.grant("andy", "hunter2")
        row = auth.store.get(AUTH_TABLE, "andy")
        assert "hunter2" not in row["password_hash"]

    def test_table_reused_if_exists(self):
        store = RelationalStore("x")
        AuthTable(store).grant("a", "1")
        again = AuthTable(store)
        assert again.is_authorized("a", "1")


class TestEnvelope:
    def test_seal_unseal_roundtrip(self):
        creds = Credentials("phil", "secret-pw")
        envelope = seal(creds, "net-pass")
        assert unseal(envelope, "net-pass") == creds

    def test_envelope_is_hex_and_opaque(self):
        envelope = seal(Credentials("phil", "pw"), "net-pass")
        bytes.fromhex(envelope)  # valid hex
        assert "phil" not in envelope
        assert "pw" not in envelope

    def test_wrong_network_passphrase(self):
        envelope = seal(Credentials("phil", "pw"), "net-pass")
        with pytest.raises(AuthenticationError):
            unseal(envelope, "other-pass")

    def test_garbage_envelope(self):
        with pytest.raises(AuthenticationError):
            unseal("not-hex!!", "p")
        with pytest.raises(AuthenticationError):
            unseal("abcd", "p")

    def test_newline_in_user_rejected(self):
        with pytest.raises(AuthenticationError):
            seal(Credentials("a\nb", "pw"), "p")

    def test_password_may_contain_newline(self):
        creds = Credentials("phil", "p\nw")
        assert unseal(seal(creds, "k"), "k") == creds

    def test_unicode_credentials(self):
        creds = Credentials("phïl", "päss")
        assert unseal(seal(creds, "k"), "k") == creds
