"""Targeted shard-fault scenarios: crash failover, fenced rebalancing
under a publish storm, per-shard cache epochs, and repair convergence.

These are the deterministic single-scenario counterparts to the seeded
``sharded`` chaos profile: each test manufactures one fault shape and
asserts the exact recovery behavior.
"""

import pytest

from repro.chaos.invariants import check_directory_cache
from repro.util.errors import ReproError, UnknownUserError
from repro.world import SyDWorld

USERS = ["alice", "bob", "carol", "dave", "erin", "fred"]


def _sharded_world(**kwargs):
    world = SyDWorld(seed=21, directory_shards=4, directory_replicas=2, **kwargs)
    for user in USERS:
        world.add_node(user)
    return world


def _rows_holding(topology, table, key_field, key):
    """Shard names whose store holds a row for ``key`` in ``table``."""
    return sorted(
        shard.name
        for shard in topology.shard_list()
        if any(row[key_field] == key for row in shard.service.store.select(table))
    )


def test_shard_crash_fails_over_to_replica():
    """A lookup whose primary shard is down succeeds from the replica,
    inside the node's ordinary retry policy (no exception surfaces)."""
    world = _sharded_world()
    topology = world.directory_topology
    primary, replica = topology.user_owners("alice")
    world.crash_directory_shard(primary)
    assert not world.directory_shard_is_up(primary)

    record = world.node("bob").directory.lookup_user("alice")
    assert record["user_id"] == "alice"
    # Batched lookups fail over per-leg the same way.
    results = world.node("bob").directory.lookup_users_many(["alice", "carol"])
    assert [err for _, err in results] == [None, None]
    # The replica is where the read landed; it holds the row.
    assert replica in _rows_holding(topology, "users", "user_id", "alice")
    world.restart_directory_shard(primary)
    assert world.directory_shard_is_up(primary)


def test_write_adopted_by_replica_while_primary_down():
    world = _sharded_world()
    topology = world.directory_topology
    primary, _replica = topology.user_owners("carol")
    world.crash_directory_shard(primary)
    world.node("carol").directory.set_proxy("carol", "dave-device")
    # Served from the replica while the primary is dark.
    assert world.node("erin").directory.lookup_user("carol")["proxy_node"] == "dave-device"
    world.restart_directory_shard(primary)


def test_rebalance_with_publish_storm_loses_nothing():
    """Lookups at every rebalance fence succeed, writes landing mid-
    rebalance survive, and afterwards each key's rows sit on exactly its
    ``owners()`` shards — nothing lost, nothing duplicated."""
    world = _sharded_world()
    topology = world.directory_topology
    observer = world.node("alice").directory
    storm_log: list[str] = []

    def storm(phase):
        storm_log.append(phase)
        # The fence lookups: a registered key must resolve at *every*
        # phase — old ring until publish, new ring after.
        for user in USERS:
            assert observer.lookup_user(user)["user_id"] == user
        if phase == "publish":
            # Publish storm concurrent with the rebalance: new
            # registrations land after the ring swap, before prune.
            for i in range(3):
                world.node("bob").directory.publish_user(f"storm-{i}", f"storm-{i}-dev")

    topology.phase_hook = storm
    try:
        joined = world.add_directory_shard()
    finally:
        topology.phase_hook = None
    assert storm_log == ["copy", "publish", "prune"]
    assert joined in topology.shards and len(topology.shards) == 5

    everyone = USERS + [f"storm-{i}" for i in range(3)]
    for user in everyone:
        # Nothing lost: every registration still resolves...
        assert observer.lookup_user(user)["user_id"] == user
        # ...and nothing duplicated: rows on exactly the owner set.
        assert _rows_holding(topology, "users", "user_id", user) == sorted(
            topology.user_owners(user)
        )

    # Drain the shard back out under the same storm of fence lookups.
    topology.phase_hook = lambda phase: [observer.lookup_user(u) for u in everyone]
    try:
        world.remove_directory_shard(joined)
    finally:
        topology.phase_hook = None
    for user in everyone:
        assert observer.lookup_user(user)["user_id"] == user
        assert _rows_holding(topology, "users", "user_id", user) == sorted(
            topology.user_owners(user)
        )


def test_rebalance_bumps_only_touched_shard_epochs():
    world = _sharded_world()
    topology = world.directory_topology
    before = {name: topology.epoch_of(name) for name in topology.shard_names()}
    world.add_directory_shard()
    after = {name: topology.epoch_of(name) for name in before}
    assert any(after[name] > before[name] for name in before), "no shard saw migration"


def test_per_shard_cache_invariant_clean_run():
    """check_directory_cache passes on a cached sharded world after
    mixed traffic (the per-shard epoch generalization holds)."""
    world = _sharded_world(directory_cache=True)
    for observer in USERS[:3]:
        for target in USERS:
            world.node(observer).directory.lookup_user(target)
    world.node("alice").directory.set_proxy("bob", "carol-device")
    world.node("dave").directory.register_service("dave", "cal", "calendar", ["query"])
    world.add_directory_shard()
    assert check_directory_cache(world) == []


def test_per_shard_cache_invariant_detects_poisoned_entry():
    """The checker is not vacuous: a manufactured stale cache entry is
    reported as a divergence violation."""
    world = _sharded_world(directory_cache=True)
    observer = world.node("erin")
    observer.directory.lookup_user("alice")  # fill the bucket at current epoch
    poisoned = dict(observer.directory.lookup_user("alice"))
    poisoned["node_id"] = "wrong-device"
    observer.directory.cache.put(("user", "alice"), poisoned)
    violations = check_directory_cache(world)
    assert any(
        v.check == "directory_cache" and "diverges" in v.detail for v in violations
    ), violations


def test_crash_restart_repair_converges():
    """Mutations made while a shard is dark reach it on restart via
    anti-entropy repair; afterwards its store matches its co-owners."""
    world = _sharded_world()
    topology = world.directory_topology
    primary, _ = topology.user_owners("fred")
    world.crash_directory_shard(primary)
    world.node("fred").directory.set_proxy("fred", "erin-device")
    world.node("fred").directory.register_service("fred", "cal", "calendar", ["query"])
    restored = world.restart_directory_shard(primary)
    assert restored > 0  # repair re-copied the rows it missed
    store = topology.shards[primary].service.store
    row = store.get("users", "fred")
    assert row is not None and row["proxy_node"] == "erin-device"
    assert any(r["user_id"] == "fred" for r in store.select("services"))
    # End-to-end: a primary-path read now sees the mutation.
    assert world.node("bob").directory.lookup_user("fred")["proxy_node"] == "erin-device"


def test_shard_fault_guards():
    world = _sharded_world()
    with pytest.raises(ReproError):
        world.remove_directory_shard("not-a-shard")
    with pytest.raises(UnknownUserError):
        world.node("alice").directory.lookup_user("ghost")
    single = SyDWorld(seed=5)
    single.add_node("solo")
    with pytest.raises(ReproError):
        single.add_directory_shard()
