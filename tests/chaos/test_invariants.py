"""Each invariant checker must catch a manufactured violation of exactly
its invariant — and stay silent on a healthy deployment."""

import pytest

from repro.calendar.app import SyDCalendarApp
from repro.calendar.model import Meeting, MeetingStatus, SlotStatus, entity_to_id
from repro.chaos.invariants import (
    check_commitments,
    check_dead_meeting_slots,
    check_decision_agreement,
    check_directory_cache,
    check_double_booking,
    check_lock_residue,
    check_orphaned_slots,
    check_stranded_marks,
    check_wal_recovery,
    run_invariant_checks,
)
from repro.datastore.snapshot import export_store
from repro.datastore.wal import ChangeJournal, attach_journal
from repro.world import SyDWorld

USERS = ["u0", "u1", "u2"]


@pytest.fixture
def app():
    world = SyDWorld(seed=13, directory_cache=True)
    app = SyDCalendarApp(world)
    for user in USERS:
        app.add_user(user)
    return app


@pytest.fixture
def meeting(app):
    return app.manager("u0").schedule_meeting("standup", ["u1", "u2"])


def test_healthy_world_has_no_violations(app, meeting):
    assert run_invariant_checks(app, app.world) == []


def test_commitment_catches_lost_reservation(app, meeting):
    # u1's slot quietly loses the reservation (a lost change leg).
    app.calendar("u1").release_slot(entity_to_id(meeting.slot))
    found = check_commitments(app)
    assert any(v.user == "u1" and meeting.meeting_id in v.detail for v in found)


def test_commitment_catches_stale_copy(app, meeting):
    app.calendar("u1").set_meeting_status(meeting.meeting_id, MeetingStatus.CANCELLED)
    found = check_commitments(app)
    assert any(v.user == "u1" and "copy of" in v.detail for v in found)


def test_double_booking_catches_conflicting_authoritative_meetings(app, meeting):
    ghost = Meeting(
        meeting_id="mtg-u2-99",
        initiator="u2",
        title="ghost",
        slot=dict(meeting.slot),
        participants=["u2", "u1"],
        must_attend=["u2", "u1"],
        or_groups=[],
        supervisors=[],
        priority=0,
        status=MeetingStatus.CONFIRMED,
        committed=["u2", "u1"],
        missing=[],
        window=(0, 4),
        created_at=0.0,
    )
    app.calendar("u2").put_meeting(ghost)
    found = check_double_booking(app)
    assert any(v.check == "double_booking" and v.user == "u1" for v in found)


def test_orphaned_slot_catches_unknown_meeting_reference(app, meeting):
    free = app.calendar("u1").free_slots(0, 4)[0]
    sid = entity_to_id({"day": free["day"], "hour": free["hour"]})
    app.calendar("u1").set_slot(sid, SlotStatus.RESERVED, meeting_id="mtg-zz-1")
    found = check_orphaned_slots(app)
    assert any(v.user == "u1" and "mtg-zz-1" in v.detail for v in found)


def test_dead_meeting_slot_catches_cancelled_residue(app, meeting):
    app.manager("u0").cancel_meeting(meeting.meeting_id)
    sid = entity_to_id(meeting.slot)
    app.calendar("u2").set_slot(sid, SlotStatus.RESERVED,
                                meeting_id=meeting.meeting_id)
    found = check_dead_meeting_slots(app)
    assert any(v.user == "u2" and meeting.meeting_id in v.detail for v in found)
    # the same residue is also an orphaned slot at u2 (meeting not live)
    assert any(v.user == "u2" for v in check_orphaned_slots(app))


def test_lock_residue_catches_leaked_lock(app, meeting):
    assert check_lock_residue(app.world) == []
    app.node("u1").locks.try_lock("slot-x", "txn-node-u9-1")
    found = check_lock_residue(app.world)
    assert [v.user for v in found] == ["u1"]


def test_directory_cache_catches_poisoned_entry(app, meeting):
    node = app.node("u1")
    node.directory.lookup_user("u2")  # fill
    truth = app.world.directory_service.lookup_user("u2")
    bogus = dict(truth, node_id="node-of-lies")
    node.directory.cache.put(("user", "u2"), bogus)
    found = check_directory_cache(app.world)
    assert any(v.user == "u1" and "diverges" in v.detail for v in found)


def test_decision_agreement_clean_after_real_negotiation(app, meeting):
    # schedule_meeting applied changes at u1/u2 and the coordinator holds
    # a durable commit for each applied txn.
    assert sum(len(app.service(u).applied_changes) for u in USERS) > 0
    assert check_decision_agreement(app, app.world) == []


def test_decision_agreement_catches_commit_without_durable_record(app, meeting):
    txn = f"txn-{app.node('u0').engine.node_id}-999"
    # u1 applied a change for a transaction whose coordinator never made
    # the decision durable (the split the intent log exists to prevent).
    app.service("u1").applied_changes[txn] += 1
    found = check_decision_agreement(app, app.world)
    assert any(
        v.user == "u1" and "no durable commit record" in v.detail for v in found
    )
    # Once the coordinator logs DECIDE(commit) the checker is satisfied.
    app.node("u0").coordinator.intents.decide(txn, "commit")
    assert check_decision_agreement(app, app.world) == []


def test_decision_agreement_catches_unresolvable_coordinator(app, meeting):
    app.service("u1").applied_changes["txn-nonexistent-node-1"] += 1
    found = check_decision_agreement(app, app.world)
    assert any("no resolvable coordinator" in v.detail for v in found)


def test_stranded_marks_catches_lock_past_lease(app, meeting):
    app.node("u1").locks.try_lock("slot-x", "txn-whoever-1")
    assert check_stranded_marks(app.world) == []  # inside the lease
    app.world.run_for(25.0)  # past the 20 s default lease
    found = check_stranded_marks(app.world)
    assert [v.user for v in found] == ["u1"]
    assert all(v.check == "no_stranded_marks" for v in found)
    # Termination (or renewal) silences it.
    app.node("u1").locks.force_release("slot-x")
    assert check_stranded_marks(app.world) == []


def test_wal_recovery_clean_and_tampered(app):
    world = app.world
    baselines = {u: export_store(world.node(u).store) for u in USERS}
    journals = {}
    for user in USERS:
        journals[user] = ChangeJournal()
        attach_journal(world.node(user).store, journals[user])
    app.manager("u0").schedule_meeting("sync", ["u1"])
    assert check_wal_recovery(world, baselines, journals) == []
    # tamper one baseline: replay can no longer reproduce the store
    table = next(
        t for t in sorted(baselines["u1"]["tables"])
        if baselines["u1"]["tables"][t]["rows"]
    )
    baselines["u1"]["tables"][table]["rows"].pop()
    found = check_wal_recovery(world, baselines, journals)
    assert [v.user for v in found] == ["u1"]
