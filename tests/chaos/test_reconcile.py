"""Anti-entropy: MeetingManager.reconcile after downtime."""

import pytest

from repro.calendar.app import SyDCalendarApp
from repro.calendar.model import MeetingStatus, SlotStatus, entity_to_id
from repro.chaos.invariants import run_invariant_checks
from repro.world import SyDWorld

USERS = ["u0", "u1", "u2"]


@pytest.fixture
def app():
    world = SyDWorld(seed=29, directory_cache=True)
    app = SyDCalendarApp(world)
    for user in USERS:
        app.add_user(user)
    return app


def slot_status(app, user, entity):
    return app.calendar(user).slot(entity_to_id(entity))


def test_participant_missed_cancel_adopts_and_releases(app):
    meeting = app.manager("u0").schedule_meeting("standup", ["u1", "u2"])
    app.world.take_down("u1")
    app.manager("u0").cancel_meeting(meeting.meeting_id)
    # u1 slept through the cancel: stale copy, stale reservation.
    assert slot_status(app, "u1", meeting.slot)["meeting_id"] == meeting.meeting_id
    app.world.bring_up("u1")
    counts = app.manager("u1").reconcile()
    assert counts["adopted"] >= 1
    assert counts["released"] >= 1
    assert slot_status(app, "u1", meeting.slot)["status"] == SlotStatus.FREE.value
    copy = app.meeting_view("u1", meeting.meeting_id)
    assert copy.status is MeetingStatus.CANCELLED
    assert run_invariant_checks(app, app.world) == []


def test_initiator_cancelled_while_down_repushes(app):
    meeting = app.manager("u0").schedule_meeting("standup", ["u1", "u2"])
    app.world.take_down("u0")
    # The initiator cancels on the powered-off device: local state flips,
    # every remote leg fails silently.
    app.manager("u0").cancel_meeting(meeting.meeting_id)
    assert slot_status(app, "u1", meeting.slot)["meeting_id"] == meeting.meeting_id
    app.world.bring_up("u0")
    counts = app.manager("u0").reconcile()
    assert counts["repushed"] >= 1
    for user in ("u1", "u2"):
        assert slot_status(app, user, meeting.slot)["status"] == SlotStatus.FREE.value
        assert app.meeting_view(user, meeting.meeting_id).status is MeetingStatus.CANCELLED
    assert run_invariant_checks(app, app.world) == []


def test_orphaned_reservation_without_meeting_row_is_released(app):
    free = app.calendar("u1").free_slots(0, 4)[0]
    entity = {"day": free["day"], "hour": free["hour"]}
    # A change leg applied but the meeting row never arrived — and the
    # initiator u2 aborted, so it does not know the meeting either.
    app.calendar("u1").set_slot(
        entity_to_id(entity), SlotStatus.RESERVED, meeting_id="mtg-u2-77"
    )
    counts = app.manager("u1").reconcile()
    assert counts["released"] >= 1
    assert slot_status(app, "u1", entity)["status"] == SlotStatus.FREE.value


def test_orphaned_reservation_with_live_meeting_is_adopted(app):
    meeting = app.manager("u0").schedule_meeting("standup", ["u1"])
    # u1 lost the meeting row but is committed: reconcile re-fetches it.
    from repro.datastore.predicate import where

    app.calendar("u1").store.delete(
        "meetings", where("meeting_id") == meeting.meeting_id
    )
    counts = app.manager("u1").reconcile()
    assert counts["adopted"] >= 1
    assert app.meeting_view("u1", meeting.meeting_id) is not None
    assert run_invariant_checks(app, app.world) == []


def test_dead_transaction_marks_resolved_by_lease_termination(app):
    prefix = f"txn-{app.node('u0').engine.node_id}-"
    app.node("u1").locks.try_lock("slot-a", f"{prefix}42")
    app.node("u2").locks.try_lock("slot-b", f"{prefix}42")
    # Reconcile no longer sweeps peer locks by roster broadcast — the
    # decision-correct path is the participant termination protocol.
    counts = app.manager("u0").reconcile()
    assert "unlocked" not in counts
    assert app.node("u1").locks.is_locked("slot-a")
    assert app.node("u2").locks.is_locked("slot-b")
    # Inside the lease the sweep leaves the marks alone.
    assert app.service("u1").terminate_stale_marks() == {"released": 0, "renewed": 0}
    app.world.run_for(25.0)  # past the 20 s default lease
    # u0's durable intent log has no commit for txn 42 -> presumed abort.
    assert app.service("u1").terminate_stale_marks()["released"] == 1
    assert app.service("u2").terminate_stale_marks()["released"] == 1
    assert not app.node("u1").locks.is_locked("slot-a")
    assert not app.node("u2").locks.is_locked("slot-b")


def test_pending_transaction_mark_renewed_not_released(app):
    owner = f"txn-{app.node('u0').engine.node_id}-77"
    # The coordinator still has the txn on its execute stack (virtual
    # time pumped from a retry backoff): txn_status answers pending.
    app.node("u0").coordinator._active.add(owner)
    app.node("u1").locks.try_lock("slot-p", owner)
    app.world.run_for(25.0)
    assert app.service("u1").terminate_stale_marks() == {"released": 0, "renewed": 1}
    assert app.node("u1").locks.is_locked("slot-p")
    # Once the frame resolves, the next sweep past the renewed lease
    # gets the durable answer (no commit -> abort) and releases.
    app.node("u0").coordinator._active.discard(owner)
    app.world.run_for(25.0)
    assert app.service("u1").terminate_stale_marks()["released"] == 1
    assert not app.node("u1").locks.is_locked("slot-p")


def test_unreachable_coordinator_mark_released_after_lease(app):
    # An owner whose coordinator node does not resolve (foreign or
    # garbage txn id) is released unilaterally once the lease runs out:
    # a coordinator that never logged a commit can only have aborted.
    app.node("u1").locks.try_lock("slot-c", "txn-other-node-1")
    app.world.run_for(25.0)
    assert app.service("u1").terminate_stale_marks()["released"] == 1
    assert not app.node("u1").locks.is_locked("slot-c")


def test_restart_clears_volatile_lock_table(app):
    app.node("u1").locks.try_lock("anything", "txn-whoever-9")
    app.world.take_down("u1")
    app.world.bring_up("u1")
    assert app.node("u1").locks.locked_count() == 0


def test_bump_of_own_meeting_detected_after_downtime(app):
    low = app.manager("u0").schedule_meeting("weekly", ["u1"])
    app.world.take_down("u0")
    # While u0 sleeps, a high-priority meeting bumps u1's slot.
    app.manager("u2").schedule_meeting(
        "exec", ["u1"], priority=9, preferred_slot=low.slot
    )
    app.world.bring_up("u0")
    counts = app.manager("u0").reconcile()
    assert counts["bumped"] >= 1
