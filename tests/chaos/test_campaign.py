"""Campaign-level properties: determinism, retry teeth, shrink, repro."""

import json

import pytest

from repro.chaos.campaign import ChaosCampaign, ChaosConfig
from repro.chaos.schedule import FaultSchedule

#: a small-but-real configuration; seed 7 is the CI acceptance seed
SMALL = dict(seed=7, episodes=3, users=5, ops=25, duration=90.0)


def test_same_seed_same_log_bytes():
    a = ChaosCampaign(ChaosConfig(**SMALL)).run()
    b = ChaosCampaign(ChaosConfig(**SMALL)).run()
    assert a.log_lines() == b.log_lines()
    assert [e.messages for e in a.episodes] == [e.messages for e in b.episodes]
    assert [e.retries for e in a.episodes] == [e.retries for e in b.episodes]


def test_different_seeds_diverge():
    a = ChaosCampaign(ChaosConfig(**{**SMALL, "seed": 7})).run()
    b = ChaosCampaign(ChaosConfig(**{**SMALL, "seed": 8})).run()
    assert a.log_lines() != b.log_lines()


def test_retry_on_survives_where_retry_off_fails():
    """The acceptance property in miniature: with the RetryPolicy the
    campaign is clean; with it disabled, invariants break somewhere."""
    on = ChaosCampaign(ChaosConfig(seed=7, episodes=25, users=6, ops=40)).run()
    assert on.ok, [str(v) for e in on.episodes for v in e.violations]
    off = ChaosCampaign(
        ChaosConfig(seed=7, episodes=25, users=6, ops=40, retry=False, shrink=False)
    ).run()
    assert not off.ok
    assert off.survived < off.config.episodes
    assert off.repro is not None and "--no-retry" in off.repro


def test_violations_counted_per_episode():
    off = ChaosCampaign(
        ChaosConfig(seed=7, episodes=25, users=6, ops=40, retry=False, shrink=False)
    ).run()
    failing = [e for e in off.episodes if not e.ok]
    assert failing
    for episode in failing:
        assert any(f"VIOLATION {v}" in line for v in episode.violations
                   for line in episode.log)


@pytest.fixture(scope="module")
def shrunk_failure():
    config = ChaosConfig(seed=7, episodes=25, users=6, ops=40, retry=False)
    result = ChaosCampaign(config).run()
    assert not result.ok
    return config, result


def test_shrink_produces_minimal_failing_prefix(shrunk_failure):
    config, result = shrunk_failure
    failing = next(e for e in result.episodes if not e.ok)
    assert result.shrunk is not None
    assert len(result.shrunk) <= len(failing.schedule)
    campaign = ChaosCampaign(config)
    # the shrunk prefix still fails ...
    assert not campaign.run_episode(failing.index, schedule=result.shrunk).ok
    # ... and is minimal: one event fewer passes
    if len(result.shrunk) > 0:
        shorter = result.shrunk.prefix(len(result.shrunk) - 1)
        assert campaign.run_episode(failing.index, schedule=shorter).ok


def test_repro_command_replays_the_failure(shrunk_failure):
    config, result = shrunk_failure
    assert result.repro is not None and result.repro.startswith("python -m repro chaos")
    schedule_json = result.repro.split("--schedule '")[1].rstrip("'")
    schedule = FaultSchedule.from_json(schedule_json)
    episode = int(result.repro.split("--episode ")[1].split()[0])
    replay = ChaosCampaign(config).run_episode(episode, schedule=schedule)
    assert not replay.ok


def test_episode_selection_runs_one_episode():
    result = ChaosCampaign(ChaosConfig(**{**SMALL, "episode": 2})).run()
    assert [e.index for e in result.episodes] == [2]


def test_schedule_json_override():
    schedule = FaultSchedule.from_json(
        json.dumps({"events": [{"at": 10.0, "kind": "crash", "params": {"user": "u00"}},
                               {"at": 20.0, "kind": "restart", "params": {"user": "u00"}}]})
    )
    config = ChaosConfig(**{**SMALL, "episode": 0,
                            "schedule_json": schedule.to_json()})
    result = ChaosCampaign(config).run()
    assert result.episodes[0].schedule == schedule


def test_intensity_zero_with_no_faults_is_always_clean():
    result = ChaosCampaign(
        ChaosConfig(seed=3, episodes=2, users=4, ops=20, intensity=0.0, retry=False)
    ).run()
    assert result.ok
    assert all(len(e.schedule) == 0 for e in result.episodes)
