"""Delivery-semantics chaos: reply-loss & duplicate faults, dedup ablation.

The ``delivery`` profile concentrates the campaign on the faults that the
exactly-once machinery exists for — lost replies (handler ran, answer
gone) and duplicated requests. With dedup on, the CI acceptance seed must
come back clean; with ``--no-dedup`` the same seed must leak
``double_application`` violations with a shrinkable, replayable repro.
"""

import pytest

from repro.chaos.campaign import ChaosCampaign, ChaosConfig
from repro.chaos.schedule import FaultSchedule

#: the CI acceptance configuration for the delivery profile (seed 7)
ACCEPT = dict(seed=7, episodes=25, users=6, ops=40, profile="delivery")


@pytest.fixture(scope="module")
def accept_run():
    return ChaosCampaign(ChaosConfig(**ACCEPT)).run()


@pytest.fixture(scope="module")
def no_dedup_run():
    return ChaosCampaign(ChaosConfig(**ACCEPT, dedup=False)).run()


def test_delivery_profile_schedules_new_fault_kinds(accept_run):
    kinds = {e.kind for ep in accept_run.episodes for e in ep.schedule.events}
    assert "reply_drop_start" in kinds
    assert "dup_start" in kinds
    # the profile deliberately excludes the classic network faults
    assert not kinds & {"drop_start", "partition_start", "proxy_fail"}


def test_dedup_on_is_clean_at_the_acceptance_seed(accept_run):
    assert accept_run.ok, [
        str(v) for e in accept_run.episodes for v in e.violations
    ]
    assert accept_run.survived == 25
    # the faults actually bit: replies were lost, requests duplicated,
    # and the reply caches answered the re-sends.
    assert sum(e.reply_lost for e in accept_run.episodes) > 0
    assert sum(e.duplicates for e in accept_run.episodes) > 0
    assert sum(e.replays for e in accept_run.episodes) > 0


def test_delivery_campaign_is_deterministic(accept_run):
    again = ChaosCampaign(ChaosConfig(**ACCEPT)).run()
    assert again.log_lines() == accept_run.log_lines()


def test_no_dedup_leaks_double_application(no_dedup_run):
    assert not no_dedup_run.ok
    assert no_dedup_run.survived < no_dedup_run.config.episodes
    violations = [v for e in no_dedup_run.episodes for v in e.violations]
    assert any("double_application" in str(v) for v in violations)


def test_no_dedup_repro_replays_and_shrinks(no_dedup_run):
    repro = no_dedup_run.repro
    assert repro is not None
    assert "--no-dedup" in repro and "--profile delivery" in repro
    schedule = FaultSchedule.from_json(repro.split("--schedule '")[1].rstrip("'"))
    episode = int(repro.split("--episode ")[1].split()[0])
    assert no_dedup_run.shrunk is not None
    assert len(schedule) == len(no_dedup_run.shrunk)
    replay = ChaosCampaign(
        ChaosConfig(**ACCEPT, dedup=False)
    ).run_episode(episode, schedule=schedule)
    assert not replay.ok
