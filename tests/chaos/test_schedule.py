"""FaultSchedule generation, serialization, and shrinking primitives."""

import random

from repro.chaos.schedule import KINDS, FaultEvent, FaultSchedule, generate_schedule

USERS = [f"u{i}" for i in range(5)]


def test_generation_is_deterministic():
    a = generate_schedule(random.Random(99), USERS, 120.0, 1.0)
    b = generate_schedule(random.Random(99), USERS, 120.0, 1.0)
    assert a == b
    assert len(a) > 0


def test_events_sorted_known_kinds_and_paired_stops():
    schedule = generate_schedule(random.Random(5), USERS, 200.0, 2.0)
    times = [e.at for e in schedule.events]
    assert times == sorted(times)
    assert all(e.kind in KINDS for e in schedule.events)
    # every destructive event ends before the healing tail
    assert max(times) <= 0.92 * 200.0
    kinds = [e.kind for e in schedule.events]
    assert kinds.count("crash") == kinds.count("restart")
    assert kinds.count("partition") == kinds.count("heal")
    assert kinds.count("drop_start") == kinds.count("drop_stop")
    assert kinds.count("proxy_bind") == kinds.count("proxy_clear")


def test_intensity_zero_is_empty():
    assert len(generate_schedule(random.Random(1), USERS, 120.0, 0.0)) == 0


def test_intensity_scales_fault_count():
    low = generate_schedule(random.Random(3), USERS, 120.0, 0.5)
    high = generate_schedule(random.Random(3), USERS, 120.0, 3.0)
    assert len(high) > len(low)


def test_json_roundtrip_is_identity():
    schedule = generate_schedule(random.Random(21), USERS, 120.0, 1.5)
    again = FaultSchedule.from_json(schedule.to_json())
    assert again == schedule
    assert again.to_json() == schedule.to_json()


def test_prefix_truncates_in_time_order():
    schedule = generate_schedule(random.Random(8), USERS, 120.0, 1.0)
    k = len(schedule) // 2
    prefix = schedule.prefix(k)
    assert len(prefix) == k
    assert prefix.events == schedule.events[:k]
    assert schedule.prefix(0).events == ()
    assert schedule.prefix(len(schedule)) == schedule


def test_describe_is_stable():
    event = FaultEvent(1.5, "drop_start", {"p": 0.25, "id": "d0"})
    assert event.describe() == "drop_start id=d0 p=0.25"
