"""RetryPolicy unit behaviour and its wiring into the engine."""

import random

import pytest

from repro.net.retry import RetryPolicy, retry_call, rpc_many_with_retry
from repro.net.stats import NetworkStats
from repro.net.transport import RpcOutcome
from repro.util.errors import MessageDropped, UnreachableError
from repro.world import SyDWorld


class TestBackoff:
    def test_exponential_and_capped(self):
        policy = RetryPolicy(base_delay=0.2, max_delay=1.0, jitter=0.0)
        assert policy.backoff(1) == pytest.approx(0.2)
        assert policy.backoff(2) == pytest.approx(0.4)
        assert policy.backoff(3) == pytest.approx(0.8)
        assert policy.backoff(4) == pytest.approx(1.0)  # capped
        assert policy.backoff(9) == pytest.approx(1.0)

    def test_jitter_stays_in_band_and_is_seeded(self):
        a = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.5,
                        rng=random.Random(42))
        b = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.5,
                        rng=random.Random(42))
        draws = [a.backoff(1) for _ in range(50)]
        assert all(0.5 <= d <= 1.5 for d in draws)
        assert draws == [b.backoff(1) for _ in range(50)]
        assert len(set(draws)) > 1

    def test_retryable_classification(self):
        policy = RetryPolicy()
        assert policy.retryable(MessageDropped("x"))
        assert policy.retryable(UnreachableError("x"))
        assert not policy.retryable(ValueError("x"))
        off = RetryPolicy(retry_dropped=False, retry_unreachable=False)
        assert not off.retryable(MessageDropped("x"))
        assert not off.retryable(UnreachableError("x"))


class TestRetryCall:
    def _flaky(self, failures, error=MessageDropped):
        state = {"left": failures, "calls": 0}

        def fn():
            state["calls"] += 1
            if state["left"] > 0:
                state["left"] -= 1
                raise error("flaky")
            return "ok"

        return fn, state

    def test_recovers_and_counts(self):
        stats = NetworkStats()
        slept = []
        policy = RetryPolicy(max_attempts=4, jitter=0.0, sleep=slept.append)
        fn, state = self._flaky(2)
        assert retry_call(policy, stats, fn) == "ok"
        assert state["calls"] == 3
        assert stats.retries == 2
        assert stats.retry_successes == 1
        assert slept == [pytest.approx(0.2), pytest.approx(0.4)]

    def test_exhausts_attempts(self):
        stats = NetworkStats()
        policy = RetryPolicy(max_attempts=3, sleep=lambda d: None)
        fn, state = self._flaky(99)
        with pytest.raises(MessageDropped):
            retry_call(policy, stats, fn)
        assert state["calls"] == 3
        assert stats.retries == 2
        assert stats.retry_successes == 0

    def test_none_policy_is_plain_call(self):
        fn, state = self._flaky(1)
        with pytest.raises(MessageDropped):
            retry_call(None, NetworkStats(), fn)
        assert state["calls"] == 1

    def test_non_transient_errors_pass_through(self):
        policy = RetryPolicy(sleep=lambda d: None)

        def fn():
            raise KeyError("app error")

        with pytest.raises(KeyError):
            retry_call(policy, NetworkStats(), fn)

    def test_first_try_success_records_nothing(self):
        stats = NetworkStats()
        assert retry_call(RetryPolicy(), stats, lambda: 5) == 5
        assert stats.retries == 0
        assert stats.retry_successes == 0


class _ScriptedTransport:
    """rpc_many stub: each leg (a string) fails ``plan[leg]`` times."""

    def __init__(self, plan):
        self.stats = NetworkStats()
        self.plan = dict(plan)
        self.batches = []

    def rpc_many(self, src, legs):
        self.batches.append(list(legs))
        outcomes = []
        for leg in legs:
            if self.plan.get(leg, 0) > 0:
                self.plan[leg] -= 1
                outcomes.append(
                    RpcOutcome(dst=leg, ok=False, error=MessageDropped(leg))
                )
            else:
                outcomes.append(RpcOutcome(dst=leg, ok=True, value={"leg": leg}))
        return outcomes


class TestRpcManyWithRetry:
    def test_only_failed_legs_are_resent(self):
        transport = _ScriptedTransport({"b": 1, "c": 2})
        policy = RetryPolicy(max_attempts=4, jitter=0.0, sleep=lambda d: None)
        outcomes = rpc_many_with_retry(transport, "src", ["a", "b", "c"], policy)
        assert [o.ok for o in outcomes] == [True, True, True]
        assert [o.dst for o in outcomes] == ["a", "b", "c"]
        assert transport.batches == [["a", "b", "c"], ["b", "c"], ["c"]]
        assert transport.stats.retries == 3  # 2 legs + 1 leg re-sent
        assert transport.stats.retry_successes == 2

    def test_exhaustion_leaves_failed_outcome(self):
        transport = _ScriptedTransport({"a": 99})
        policy = RetryPolicy(max_attempts=3, jitter=0.0, sleep=lambda d: None)
        outcomes = rpc_many_with_retry(transport, "src", ["a"], policy)
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, MessageDropped)
        assert len(transport.batches) == 3

    def test_none_policy_single_batch(self):
        transport = _ScriptedTransport({"a": 1})
        outcomes = rpc_many_with_retry(transport, "src", ["a"], None)
        assert not outcomes[0].ok
        assert len(transport.batches) == 1


class TestPerLegMessageCounts:
    """Regression: retry waves resend exactly the failed legs, re-using
    their pre-stamped idempotency keys — never the survivors."""

    def _transport(self):
        from repro.net.address import DeviceClass, NodeAddress
        from repro.net.latency import ConstantLatency
        from repro.net.transport import Transport

        t = Transport(latency=ConstantLatency(0.01))
        for n in ("src", "b", "c", "d"):
            t.register(
                NodeAddress(n, DeviceClass.WORKSTATION), lambda msg: {"ok": True}
            )
        return t

    def test_retry_wave_resends_only_failed_legs_with_same_keys(self):
        t = self._transport()
        seen = []
        t.taps.append(
            lambda m: seen.append((m.dst, m.dedup))
            if not m.is_reply and m.kind == "invoke"
            else None
        )
        # Lose b's first *reply*: the handler ran, the acknowledgement
        # vanished — the classic duplicate-producing gray fault.
        flaky = {"left": 1}
        t.faults.add_drop_rule(
            lambda m: m.is_reply
            and m.src == "b"
            and flaky.pop("left", None) is not None
        )
        policy = RetryPolicy(max_attempts=4, jitter=0.0, sleep=lambda d: None)
        from repro.net.transport import RpcCall

        outcomes = rpc_many_with_retry(
            t,
            "src",
            [RpcCall(n, "invoke", {"object": "x", "method": "m", "args": []})
             for n in ("b", "c", "d")],
            policy,
        )
        assert [o.ok for o in outcomes] == [True, True, True]
        sends = {}
        for dst, dedup in seen:
            sends.setdefault(dst, []).append(dedup)
        # Survivors went out exactly once; the flaky leg twice — with
        # one and the same idempotency key across both attempts (that
        # reuse is what lets the receiver's dedup table replay instead
        # of re-executing).
        assert len(sends["c"]) == 1 and len(sends["d"]) == 1
        assert len(sends["b"]) == 2
        assert sends["b"][0] == sends["b"][1]
        assert sends["b"][0] is not None
        # Exact delivered-message count: wave 1 = 3 requests + 2 replies
        # (b's was lost), wave 2 = 1 request + 1 reply. Nothing else.
        assert t.stats.messages == 7
        assert t.stats.reply_lost == 1


class TestEngineWiring:
    def _world_pair(self):
        from repro.device.resource import ResourceObject

        world = SyDWorld(seed=11)
        for user in ("a", "b"):
            node = world.add_node(user)
            obj = ResourceObject(f"{user}_res", node.store, node.locks)
            node.listener.publish_object(obj, user_id=user, service="res")
            obj.add("slot1")
        return world

    def _drop_next_invoke(self, world):
        dropped = {"left": 1}
        world.transport.faults.add_drop_rule(
            lambda msg: msg.kind == "invoke"
            and dropped.pop("left", None) is not None
        )

    def test_engine_retries_through_a_transient_drop(self):
        world = self._world_pair()
        world.set_retry_policy(RetryPolicy(max_attempts=4))
        self._drop_next_invoke(world)
        row = world.node("a").engine.execute("b", "res", "read", "slot1")
        assert row["status"] == "free"
        assert world.stats.retries >= 1
        assert world.stats.retry_successes >= 1

    def test_without_policy_the_drop_surfaces(self):
        world = self._world_pair()
        self._drop_next_invoke(world)
        with pytest.raises(MessageDropped):
            world.node("a").engine.execute("b", "res", "read", "slot1")
