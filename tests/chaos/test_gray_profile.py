"""Gray-failure chaos: schedule generation for the ``gray`` profile,
small campaigns with and without the health/budget machinery, and the
two new invariant checkers (``no_lease_overrun``, ``no_false_deaths``)."""

import random

import pytest

from repro.chaos.campaign import ChaosCampaign, ChaosConfig
from repro.chaos.invariants import (
    check_lease_overrun,
    check_no_false_deaths,
)
from repro.chaos.schedule import KINDS, FaultSchedule, generate_schedule
from repro.world import SyDWorld

USERS = [f"u{i}" for i in range(5)]

GRAY_KINDS = {
    "slow_start", "slow_stop",
    "degrade_start", "degrade_stop",
    "stall_start", "stall_stop",
    "skew_start", "skew_stop",
}


def gray_schedule(seed=4, intensity=3.0):
    return generate_schedule(
        random.Random(seed), USERS, 120.0, intensity, profile="gray"
    )


class TestGraySchedule:
    def test_gray_kinds_are_registered(self):
        assert GRAY_KINDS <= set(KINDS)

    def test_gray_profile_draws_gray_kinds(self):
        kinds = {e.kind for e in gray_schedule().events}
        assert kinds <= GRAY_KINDS | {"crash", "restart"}
        # With intensity 3 the mix reliably includes gray windows.
        assert kinds & GRAY_KINDS

    def test_starts_and_stops_pair_up(self):
        kinds = [e.kind for e in gray_schedule(seed=9).events]
        for fam in ("slow", "degrade", "stall", "skew"):
            assert kinds.count(f"{fam}_start") == kinds.count(f"{fam}_stop")

    def test_skew_offsets_stay_inside_the_settle_safe_band(self):
        for seed in range(12):
            for e in gray_schedule(seed=seed).events:
                if e.kind == "skew_start":
                    assert -6.0 <= e.params["offset"] <= 6.0

    def test_stall_delays_dwarf_any_sane_timeout(self):
        for seed in range(12):
            for e in gray_schedule(seed=seed).events:
                if e.kind == "stall_start":
                    assert e.params["delay"] >= 30.0

    def test_json_roundtrip_preserves_gray_events(self):
        schedule = gray_schedule(seed=2)
        again = FaultSchedule.from_json(schedule.to_json())
        assert again == schedule

    def test_generation_is_deterministic(self):
        assert gray_schedule(seed=6) == gray_schedule(seed=6)
        assert gray_schedule(seed=6) != gray_schedule(seed=7)


class TestGrayCampaign:
    def test_small_gray_campaign_is_clean_and_reproducible(self):
        cfg = dict(seed=7, episodes=3, users=6, ops=30, profile="gray",
                   shrink=False)
        a = ChaosCampaign(ChaosConfig(**cfg)).run()
        b = ChaosCampaign(ChaosConfig(**cfg)).run()
        assert a.ok
        assert a.log_lines() == b.log_lines()

    def test_no_health_ablation_config_is_part_of_the_log_header(self):
        campaign = ChaosCampaign(
            ChaosConfig(seed=7, episodes=1, users=4, ops=10,
                        profile="gray", health=False, shrink=False)
        )
        result = campaign.run()
        assert any("no-health" in line for line in result.log_lines())
        schedule = gray_schedule(seed=7, intensity=1.0)
        assert "--no-health" in campaign.repro_command(0, schedule)

    def test_no_hedge_ablation_flag_round_trips(self):
        campaign = ChaosCampaign(
            ChaosConfig(seed=7, episodes=1, users=4, ops=10,
                        profile="gray", hedge=False, shrink=False)
        )
        schedule = gray_schedule(seed=7, intensity=1.0)
        assert "--no-hedge" in campaign.repro_command(0, schedule)


class TestGrayInvariantCheckers:
    def test_lease_overrun_checker_flags_the_audit_trail(self):
        world = SyDWorld(seed=3)
        node = world.add_node("a")
        assert check_lease_overrun(world) == []
        node.coordinator.lease_overruns.append(("txn-node-a-1", 33.25, 20.0))
        found = check_lease_overrun(world)
        assert len(found) == 1
        v = found[0]
        assert v.check == "no_lease_overrun"
        assert v.user == "a"
        assert "33.250" in v.detail and "20.0" in v.detail

    def test_false_death_checker_needs_ground_truth_disagreement(self):
        world = SyDWorld(seed=3, health=True)
        world.add_node("a")
        assert check_no_false_deaths(world) == []
        # A verdict on a genuinely dead node is fine...
        world.health.record_verdict("a", actually_healthy=False)
        assert check_no_false_deaths(world) == []
        # ...quarantining a *healthy* node is the violation.
        world.health.record_verdict("a", actually_healthy=True)
        found = check_no_false_deaths(world)
        assert [v.check for v in found] == ["no_false_deaths"]
        assert found[0].user == "a"

    def test_false_death_checker_is_inert_without_health(self):
        world = SyDWorld(seed=3, health=False)
        world.add_node("a")
        assert world.health is None
        assert check_no_false_deaths(world) == []
