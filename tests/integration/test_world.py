"""Tests for the SyDWorld builder/facade."""

import pytest

from repro import SyDWorld
from repro.net.address import DeviceClass
from repro.net.latency import ZeroLatency
from repro.util.errors import ReproError


class TestTopology:
    def test_add_node_publishes_user(self):
        world = SyDWorld()
        node = world.add_node("phil")
        assert node.directory.lookup_user("phil")["node_id"] == "phil-device"
        assert world.users() == ["phil"]

    def test_duplicate_user_rejected(self):
        world = SyDWorld()
        world.add_node("phil")
        with pytest.raises(ReproError):
            world.add_node("phil")

    def test_unknown_store_kind(self):
        world = SyDWorld()
        with pytest.raises(ReproError, match="store kind"):
            world.add_node("x", store_kind="oracle")

    def test_unknown_latency_preset(self):
        with pytest.raises(ReproError, match="latency"):
            SyDWorld(latency="quantum")

    def test_node_lookup(self):
        world = SyDWorld()
        node = world.add_node("phil")
        assert world.node("phil") is node
        with pytest.raises(ReproError):
            world.node("ghost")

    def test_join_false_defers_publication(self):
        from repro.util.errors import UnknownUserError

        world = SyDWorld()
        node = world.add_node("phil", join=False)
        with pytest.raises(UnknownUserError):
            node.directory.lookup_user("phil")
        node.join()
        assert node.directory.lookup_user("phil")["user_id"] == "phil"

    def test_device_class_applied(self):
        world = SyDWorld()
        node = world.add_node("srv", device_class=DeviceClass.SERVER)
        assert node.address.device_class is DeviceClass.SERVER


class TestFaultsAndTime:
    def test_take_down_bring_up(self):
        world = SyDWorld()
        world.add_node("a")
        assert world.is_up("a")
        world.take_down("a")
        assert not world.is_up("a")
        world.bring_up("a")
        assert world.is_up("a")

    def test_run_for_advances_clock(self):
        world = SyDWorld()
        t0 = world.now
        world.run_for(10.0)
        assert world.now == pytest.approx(t0 + 10.0)

    def test_stats_exposed(self):
        world = SyDWorld()
        world.add_node("a")
        assert world.stats.messages > 0  # the join traffic


class TestLatencyPresets:
    def test_zero_latency_keeps_clock_still_for_rpc(self):
        world = SyDWorld(latency="zero")
        world.add_node("a")
        t = world.now
        world.add_node("b")
        assert world.now == t

    def test_custom_latency_model_instance(self):
        world = SyDWorld(latency=ZeroLatency())
        world.add_node("a")
        assert world.now == 0.0

    def test_same_seed_same_virtual_time(self):
        def build():
            world = SyDWorld(seed=99)
            world.add_node("a")
            world.add_node("b")
            world.node("a").directory.lookup_user("b")
            return world.now

        assert build() == build()
