"""Failure injection across the stack.

Mobility means devices vanish mid-protocol. These tests inject faults at
awkward moments and assert the §4.3 atomicity guarantee (no partial
changes, no leaked locks) and graceful degradation elsewhere.
"""

import pytest

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp
from repro.calendar.model import MeetingStatus
from repro.device.resource import ResourceObject
from repro.txn.coordinator import AND, OR, Participant
from repro.util.errors import MessageDropped, UnreachableError


@pytest.fixture
def app():
    world = SyDWorld(seed=29)
    application = SyDCalendarApp(world)
    for u in ["phil", "andy", "suzy"]:
        application.add_user(u)
    return application


class TestNegotiationFaults:
    def make_resources(self, n=3):
        world = SyDWorld(seed=31)
        users = [f"u{i}" for i in range(n)]
        for u in users:
            node = world.add_node(u)
            obj = ResourceObject(f"{u}_res", node.store, node.locks)
            node.listener.publish_object(obj, user_id=u, service="res")
            obj.add("slot")
        return world, users

    def test_target_down_mid_protocol_no_partial_changes(self):
        world, users = self.make_resources(3)
        # u2 goes down before the negotiation starts.
        world.take_down(users[2])
        node = world.node(users[0])
        result = node.coordinator.execute(
            Participant(users[0], "slot", "res"),
            [Participant(users[1], "slot", "res"), Participant(users[2], "slot", "res")],
            AND,
        )
        assert not result.ok
        assert world.node(users[1]).store.get("resources", "slot")["status"] == "free"
        for u in users[:2]:
            assert world.node(u).locks.locked_count() == 0

    def test_or_survives_one_dead_target(self):
        world, users = self.make_resources(3)
        world.take_down(users[2])
        node = world.node(users[0])
        result = node.coordinator.execute(
            Participant(users[0], "slot", "res"),
            [Participant(users[1], "slot", "res"), Participant(users[2], "slot", "res")],
            OR,
        )
        assert result.ok
        assert result.refused == [users[2]]

    def test_drop_rule_on_invoke_messages(self):
        world, users = self.make_resources(2)
        node = world.node(users[0])
        remove = world.transport.faults.add_drop_rule(lambda m: m.kind == "invoke")
        with pytest.raises(MessageDropped):
            node.engine.execute_on_node(
                world.node(users[1]).node_id, f"{users[1]}_res", "read", "slot"
            )
        remove()


class TestCalendarFaults:
    def test_unreachable_participant_yields_tentative(self, app):
        app.world.take_down("suzy")
        m = app.manager("phil").schedule_meeting("X", ["andy", "suzy"])
        assert m.status is MeetingStatus.TENTATIVE
        assert m.missing == ["suzy"]
        assert "andy" in m.committed

    def test_cancel_with_participant_down_cleans_rest(self, app):
        m = app.manager("phil").schedule_meeting("X", ["andy", "suzy"])
        app.world.take_down("suzy")
        app.manager("phil").cancel_meeting(m.meeting_id)
        for user in ["phil", "andy"]:
            assert app.calendar(user).slot_of(m.slot)["status"] == "free"
        # suzy's slot is stale until she returns; her copy still reserved.
        app.world.bring_up("suzy")
        assert app.calendar("suzy").slot_of(m.slot)["status"] == "reserved"

    def test_partition_splits_scheduling(self, app):
        app.world.transport.faults.partition(
            {"phil-device"}, {"andy-device", "suzy-device"}
        )
        # The directory node is backbone: lookups work, invocations fail.
        m = app.manager("phil").schedule_meeting("X", ["andy", "suzy"])
        assert m.status is MeetingStatus.TENTATIVE
        assert set(m.missing) == {"andy", "suzy"}
        app.world.transport.faults.heal_partition()

    def test_initiator_can_reach_nobody(self, app):
        from repro.util.errors import SchedulingError

        app.world.take_down("andy")
        app.world.take_down("suzy")
        m = app.manager("phil").schedule_meeting("X", ["andy", "suzy"])
        # Degenerate tentative: phil holds his slot, everyone missing.
        assert m.status is MeetingStatus.TENTATIVE
        assert set(m.missing) == {"andy", "suzy"}

    def test_recovery_after_outage_promotes(self, app):
        app.world.take_down("suzy")
        m = app.manager("phil").schedule_meeting("X", ["andy", "suzy"])
        assert m.status is MeetingStatus.TENTATIVE
        app.world.bring_up("suzy")
        # suzy was never told about the meeting; phil re-confirms when
        # informed of availability. Simulate suzy's device announcing by
        # re-firing the initiator-side confirmation directly:
        assert app.manager("phil").confirm_tentative(m.meeting_id) is True
        assert app.meeting_view("suzy", m.meeting_id).status is MeetingStatus.CONFIRMED


class TestEventFaults:
    def test_global_event_skips_down_subscriber(self, app):
        phil, andy = app.node("phil"), app.node("andy")
        seen = []
        andy.events.on_global("cal.t", lambda t, p: seen.append(t))
        andy.events.subscribe_remote(phil.node_id, "cal.t")
        app.world.take_down("andy")
        delivered = phil.events.raise_global("cal.t")
        assert delivered == 0
        assert phil.events.notifications_failed == 1
        app.world.bring_up("andy")
        phil.events.raise_global("cal.t")
        assert seen == ["global.cal.t"]
