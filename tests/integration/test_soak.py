"""Soak test: a long mixed workload with periodic sweeps.

Drives hundreds of operations (schedules, cancels, bumps, moves, drops,
blocks, device churn) against one world, with link-expiry monitors
running on the virtual clock, then audits global invariants. This is the
closest thing to the prototype's week-on-the-WLAN deployment.
"""

import random

import pytest

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp
from repro.calendar.model import MeetingStatus, SlotStatus
from repro.util.errors import CalendarError, ReproError, SchedulingError

N_USERS = 6
N_OPS = 250


@pytest.fixture(scope="module")
def soaked_app():
    world = SyDWorld(seed=77)
    app = SyDCalendarApp(world, days=5, link_expiry_sweep=30.0)
    users = [f"u{i}" for i in range(N_USERS)]
    for u in users:
        app.add_user(u)

    rng = random.Random(77)
    scheduled: list[tuple[str, str]] = []
    stats = {"scheduled": 0, "cancelled": 0, "moved": 0, "dropped": 0,
             "blocked": 0, "churn": 0, "refused": 0}

    for step in range(N_OPS):
        op = rng.choice(
            ["schedule", "schedule", "schedule", "cancel", "move", "drop",
             "block", "unblock", "churn", "tick"]
        )
        try:
            if op == "schedule":
                initiator = rng.choice(users)
                others = rng.sample([u for u in users if u != initiator], rng.randint(1, 3))
                priority = rng.randint(0, 3)
                m = app.manager(initiator).schedule_meeting(
                    f"soak-{step}", others, priority=priority
                )
                scheduled.append((initiator, m.meeting_id))
                stats["scheduled"] += 1
            elif op == "cancel" and scheduled:
                initiator, mid = rng.choice(scheduled)
                app.manager(initiator).cancel_meeting(mid)
                stats["cancelled"] += 1
            elif op == "move" and scheduled:
                initiator, mid = rng.choice(scheduled)
                if app.manager(initiator).move_meeting(mid) is not None:
                    stats["moved"] += 1
            elif op == "drop" and scheduled:
                initiator, mid = rng.choice(scheduled)
                meeting = app.meeting_view(initiator, mid)
                others = [u for u in meeting.committed if u != initiator]
                if others and meeting.status in (
                    MeetingStatus.CONFIRMED, MeetingStatus.TENTATIVE
                ):
                    app.manager(rng.choice(others)).drop_out(mid)
                    stats["dropped"] += 1
            elif op == "block":
                user = rng.choice(users)
                free = app.calendar(user).free_slots(0, 4)
                if free:
                    row = rng.choice(free)
                    app.service(user).block({"day": row["day"], "hour": row["hour"]})
                    stats["blocked"] += 1
            elif op == "unblock":
                user = rng.choice(users)
                from repro.datastore.predicate import where

                busy = app.calendar(user).store.select(
                    "slots", where("status") == SlotStatus.BUSY.value
                )
                if busy:
                    row = rng.choice(busy)
                    app.service(user).unblock({"day": row["day"], "hour": row["hour"]})
            elif op == "churn":
                user = rng.choice(users)
                if world.is_up(user):
                    world.take_down(user)
                    world.bring_up(user)
                    stats["churn"] += 1
            elif op == "tick":
                world.run_for(60.0)
        except (SchedulingError, CalendarError):
            stats["refused"] += 1
        except ReproError:
            stats["refused"] += 1

    world.run_for(120.0)  # final sweeps
    return app, users, scheduled, stats


def test_soak_did_real_work(soaked_app):
    app, users, scheduled, stats = soaked_app
    assert stats["scheduled"] >= 30
    assert stats["cancelled"] >= 3


def test_soak_no_leaked_locks(soaked_app):
    app, users, scheduled, stats = soaked_app
    for user in users:
        assert app.node(user).locks.locked_count() == 0, f"{user} leaked locks"


def test_soak_slot_meeting_consistency(soaked_app):
    """Every occupied slot points at a meeting that exists at that user
    and that the user is committed to (unless it went stale while the
    device was down — churn re-ups immediately, so none here)."""
    app, users, scheduled, stats = soaked_app
    from repro.datastore.predicate import where

    for user in users:
        cal = app.calendar(user)
        occupied = cal.store.select(
            "slots", where("status").isin(["reserved", "held"])
        )
        for row in occupied:
            mid = row["meeting_id"]
            assert mid is not None, f"{user} slot {row['slot_id']} occupied w/o meeting"
            assert cal.has_meeting(mid)
            meeting = cal.meeting(mid)
            assert meeting.status in (
                MeetingStatus.CONFIRMED, MeetingStatus.TENTATIVE
            ), f"{user} slot held by {meeting.status} meeting {mid}"


def test_soak_confirmed_meetings_consistent_across_views(soaked_app):
    app, users, scheduled, stats = soaked_app
    for initiator, mid in scheduled:
        meeting = app.meeting_view(initiator, mid)
        if meeting is None or meeting.status is not MeetingStatus.CONFIRMED:
            continue
        for member in meeting.committed:
            view = app.meeting_view(member, mid)
            assert view is not None
            assert view.slot == meeting.slot
            row = app.calendar(member).slot_of(meeting.slot)
            assert row["meeting_id"] == mid


def test_soak_cancelled_meetings_free_their_slots(soaked_app):
    app, users, scheduled, stats = soaked_app
    for initiator, mid in scheduled:
        meeting = app.meeting_view(initiator, mid)
        if meeting is None or meeting.status is not MeetingStatus.CANCELLED:
            continue
        for member in meeting.committed:
            row = app.calendar(member).slot_of(meeting.slot)
            assert row["meeting_id"] != mid, (
                f"{member} still holds cancelled {mid}"
            )


def test_soak_library_auditor_is_clean(soaked_app):
    """The library's own audit (repro.calendar.audit) agrees: no
    violations after the full workload. ``cancelled-clean`` tolerates
    residue at users whose devices were down during a cancel, so filter
    to the rules the synchronous soak must satisfy strictly."""
    from repro.calendar.audit import check_locks, check_slot_meeting_consistency

    app, users, scheduled, stats = soaked_app
    assert check_locks(app) == []
    assert check_slot_meeting_consistency(app) == []


def test_soak_link_contexts_only_for_live_meetings(soaked_app):
    """Cancelled meetings must leave no links behind anywhere."""
    app, users, scheduled, stats = soaked_app
    cancelled = {
        mid
        for initiator, mid in scheduled
        if (m := app.meeting_view(initiator, mid)) and m.status is MeetingStatus.CANCELLED
    }
    for user in users:
        for link in app.node(user).links.all_links():
            mid = link.context.get("meeting_id")
            assert mid not in cancelled, (
                f"{user} still holds link {link.link_id} of cancelled {mid}"
            )
