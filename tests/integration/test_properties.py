"""Property-based invariants of the whole system (hypothesis).

The invariants the paper's semantics promise, checked against random
operation sequences:

* **No double booking**: a slot never belongs to two live meetings; all
  participants of a confirmed meeting agree on its slot.
* **Atomicity**: after any negotiation, either the constraint held and
  the change landed at the initiator + locked targets, or nothing
  changed anywhere; no locks survive a negotiation.
* **Promotion order**: waiting-link promotion always selects the maximal
  priority present.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp
from repro.calendar.model import MeetingStatus, SlotStatus
from repro.device.resource import ResourceObject
from repro.kernel.linktypes import LinkRef, LinkSubtype, LinkType
from repro.txn.coordinator import AND, OR, XOR, Participant
from repro.util.errors import CalendarError, SchedulingError

USERS = ["p0", "p1", "p2", "p3"]

# One random workload step.
_op = st.one_of(
    st.tuples(
        st.just("schedule"),
        st.sampled_from(USERS),
        st.lists(st.sampled_from(USERS), min_size=1, max_size=3, unique=True),
    ),
    st.tuples(st.just("cancel"), st.sampled_from(USERS)),
    st.tuples(
        st.just("block"),
        st.sampled_from(USERS),
        st.integers(0, 2),
        st.integers(9, 12),
    ),
    st.tuples(
        st.just("unblock"),
        st.sampled_from(USERS),
        st.integers(0, 2),
        st.integers(9, 12),
    ),
    st.tuples(st.just("drop"), st.sampled_from(USERS)),
)


def check_no_double_booking(app):
    """Slot/meeting cross-consistency at one user."""
    for user in USERS:
        cal = app.calendar(user)
        for meeting in cal.meetings():
            if meeting.status in (MeetingStatus.CONFIRMED,):
                row = cal.slot_of(meeting.slot)
                # A confirmed meeting this user committed to must own the slot.
                if user in meeting.committed:
                    assert row["meeting_id"] == meeting.meeting_id, (
                        f"{user} committed to {meeting.meeting_id} but slot "
                        f"row says {row}"
                    )


def check_confirmed_views_agree(app):
    """Every committed participant sees the same confirmed meeting."""
    for user in USERS:
        for meeting in app.calendar(user).meetings(MeetingStatus.CONFIRMED):
            if meeting.initiator != user:
                continue
            for member in meeting.committed:
                view = app.meeting_view(member, meeting.meeting_id)
                assert view is not None
                assert view.slot == meeting.slot


def check_no_leaked_locks(app):
    for user in USERS:
        assert app.node(user).locks.locked_count() == 0, f"{user} leaked locks"


@settings(max_examples=25, deadline=None)
@given(ops=st.lists(_op, max_size=12), seed=st.integers(0, 3))
def test_calendar_workload_invariants(ops, seed):
    world = SyDWorld(seed=seed)
    app = SyDCalendarApp(world, days=3)
    for u in USERS:
        app.add_user(u)

    scheduled: list[tuple[str, str]] = []   # (initiator, meeting_id)
    for op in ops:
        kind = op[0]
        try:
            if kind == "schedule":
                _, initiator, participants = op
                m = app.manager(initiator).schedule_meeting(
                    "prop", participants, day_from=0, day_to=2
                )
                scheduled.append((initiator, m.meeting_id))
            elif kind == "cancel":
                user = op[1]
                mine = [(i, mid) for i, mid in scheduled if i == user]
                if mine:
                    app.manager(user).cancel_meeting(mine[-1][1])
            elif kind == "block":
                _, user, day, hour = op
                app.service(user).block({"day": day, "hour": hour})
            elif kind == "unblock":
                _, user, day, hour = op
                app.service(user).unblock({"day": day, "hour": hour})
            elif kind == "drop":
                user = op[1]
                theirs = [
                    m
                    for m in app.calendar(user).meetings()
                    if m.initiator != user
                    and user in m.committed
                    and m.status in (MeetingStatus.CONFIRMED, MeetingStatus.TENTATIVE)
                ]
                if theirs:
                    app.manager(user).drop_out(theirs[0].meeting_id)
        except (SchedulingError, CalendarError):
            pass  # legitimate refusals are part of the workload

        check_no_leaked_locks(app)

    check_no_double_booking(app)
    check_confirmed_views_agree(app)


# --------------------------------------------------------------- coordinator

@settings(max_examples=40, deadline=None)
@given(
    availability=st.lists(st.booleans(), min_size=1, max_size=6),
    constraint=st.sampled_from([AND, OR, XOR]),
)
def test_negotiation_atomicity_property(availability, constraint):
    """Either the constraint held and exactly initiator+locked changed,
    or nothing changed; locks never leak."""
    world = SyDWorld(seed=1)
    users = [f"u{i}" for i in range(len(availability) + 1)]
    for u in users:
        node = world.add_node(u)
        obj = ResourceObject(f"{u}_res", node.store, node.locks)
        node.listener.publish_object(obj, user_id=u, service="res")
        obj.add("slot")
    for u, free in zip(users[1:], availability):
        if not free:
            world.node(u).store.update("resources", None, {"status": "busy"})

    node = world.node(users[0])
    targets = [Participant(u, "slot", "res") for u in users[1:]]
    result = node.coordinator.execute(
        Participant(users[0], "slot", "res"), targets, constraint
    )

    available = sum(availability)
    expected_ok = constraint.satisfied(available, len(availability))
    assert result.ok == expected_ok

    changed_users = {
        u
        for u in users
        if world.node(u).store.get("resources", "slot")["status"] == "reserved"
    }
    if result.ok:
        assert changed_users == set(result.changed)
        assert users[0] in changed_users
    else:
        assert changed_users == set()
    for u in users:
        assert world.node(u).locks.locked_count() == 0


# --------------------------------------------------------------- promotion

@settings(max_examples=40, deadline=None)
@given(priorities=st.lists(st.integers(0, 9), min_size=1, max_size=8))
def test_waiting_promotion_picks_max_priority(priorities):
    world = SyDWorld(seed=2)
    node = world.add_node("a")
    world.add_node("b")
    blocking = node.links.create_link(
        LinkType.NEGOTIATION, [LinkRef("b", "slot", "res")], constraint=AND
    )
    waiters = []
    for p in priorities:
        w = node.links.create_link(
            LinkType.NEGOTIATION,
            [LinkRef("b", "slot", "res")],
            constraint=AND,
            subtype=LinkSubtype.TENTATIVE,
            waiting_on=blocking.link_id,
            priority=p,
        )
        waiters.append((p, w.link_id))

    promoted = set(node.links.delete_link(blocking.link_id))
    top = max(priorities)
    expected = {lid for p, lid in waiters if p == top}
    assert promoted == expected
    for p, lid in waiters:
        link = node.links.get_link(lid)
        assert (link.subtype is LinkSubtype.PERMANENT) == (lid in expected)
