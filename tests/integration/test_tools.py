"""Tests for the figure-regeneration tools (link graphs, sequence diagrams)."""

import pytest

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp
from repro.tools.linkgraph import collect_edges, link_census, to_dot, to_text
from repro.tools.sequence import MessageRecorder


@pytest.fixture
def meeting_world():
    world = SyDWorld(seed=61)
    app = SyDCalendarApp(world)
    for u in ["phil", "andy", "suzy"]:
        app.add_user(u)
    m = app.manager("phil").schedule_meeting("T", ["andy", "suzy"])
    return world, app, m


class TestLinkGraph:
    def test_collect_edges_reflects_meeting_links(self, meeting_world):
        world, app, m = meeting_world
        edges = collect_edges(world)
        # Forward link: phil -> andy, phil -> suzy (negotiation/and/forward).
        fwd = [e for e in edges if e.owner == "phil" and e.role == "forward"]
        assert {e.peer for e in fwd} == {"andy", "suzy"}
        assert all(e.constraint == "and" for e in fwd)
        # Back links at each participant.
        back = [e for e in edges if e.role == "back"]
        assert {e.owner for e in back} == {"andy", "suzy"}
        assert all(e.peer == "phil" for e in back)

    def test_dot_rendering(self, meeting_world):
        world, app, m = meeting_world
        dot = to_dot(collect_edges(world))
        assert dot.startswith("digraph")
        assert '"phil" -> "andy"' in dot
        assert "style=solid" in dot
        assert dot.rstrip().endswith("}")

    def test_dot_styles_by_type(self, meeting_world):
        world, app, m = meeting_world
        # Make a tentative link: block raj? Use supervisor-style subscription:
        m2 = app.manager("andy").schedule_meeting(
            "S", ["phil", "suzy"], supervisors=["suzy"]
        )
        dot = to_dot(collect_edges(world))
        assert "style=dashed" in dot  # subscription back link at suzy

    def test_text_rendering(self, meeting_world):
        world, app, m = meeting_world
        text = to_text(collect_edges(world))
        assert "phil:" in text
        assert "──> andy" in text

    def test_text_empty(self):
        assert "no coordination links" in to_text([])

    def test_census(self, meeting_world):
        world, app, m = meeting_world
        census = link_census(world)
        assert census["negotiation/permanent"] == 3  # forward + 2 back

    def test_tentative_edges_marked(self, meeting_world):
        world, app, m = meeting_world
        for row in app.calendar("suzy").free_slots(0, 4):
            app.service("suzy").block({"day": row["day"], "hour": row["hour"]})
        t = app.manager("andy").schedule_meeting("T2", ["suzy"])
        edges = collect_edges(world)
        tentative = [e for e in edges if e.subtype == "tentative"]
        assert any(e.owner == "suzy" and e.peer == "andy" for e in tentative)
        assert "┄┄> andy" in to_text(edges)


class TestMessageRecorder:
    def test_records_requests_and_replies(self):
        world = SyDWorld(seed=62)
        recorder = MessageRecorder.attach(world.transport)
        world.add_node("a")
        world.add_node("b")
        world.node("a").directory.lookup_user("b")
        kinds = {m.kind for m in recorder.messages}
        assert kinds == {"invoke"}
        assert any(m.is_reply for m in recorder.messages)
        assert any(not m.is_reply for m in recorder.messages)

    def test_detail_shows_object_method(self):
        world = SyDWorld(seed=62)
        recorder = MessageRecorder.attach(world.transport)
        world.add_node("a")
        requests = recorder.requests()
        assert any(m.detail == "_syd_directory.publish_user" for m in requests)

    def test_detach_stops_recording(self):
        world = SyDWorld(seed=62)
        recorder = MessageRecorder.attach(world.transport)
        world.add_node("a")
        n = len(recorder.messages)
        recorder.detach()
        world.add_node("b")
        assert len(recorder.messages) == n

    def test_diagram_renders(self, meeting_world):
        world, app, m = meeting_world
        recorder = MessageRecorder.attach(world.transport)
        app.manager("phil").cancel_meeting(m.meeting_id)
        diagram = recorder.to_diagram(max_rows=12)
        assert "phil-device" in diagram
        # Arrows and numbered steps appear.
        assert "►" in diagram or "◄" in diagram
        assert "1." in diagram

    def test_diagram_empty(self):
        assert "(no messages recorded)" in MessageRecorder().to_diagram()

    def test_summary(self):
        world = SyDWorld(seed=63)
        recorder = MessageRecorder.attach(world.transport)
        world.add_node("a")
        s = recorder.summary()
        assert s["total"] == len(recorder.messages)
        assert s["by_kind"]["invoke"] >= 2

    def test_participant_filter(self, meeting_world):
        world, app, m = meeting_world
        recorder = MessageRecorder.attach(world.transport)
        app.node("phil").directory.lookup_user("andy")
        diagram = recorder.to_diagram(
            participants=["phil-device", "syd-directory"]
        )
        assert "phil-device" in diagram and "syd-directory" in diagram
