"""Tests for the benchmark support package itself."""

import pytest

from repro.bench.harness import ALL_EXPERIMENTS, run_experiment
from repro.bench.metrics import Measurement, format_table, measure
from repro.bench.workloads import (
    MeetingRequest,
    build_calendar_population,
    meeting_request_stream,
    quorum_request,
)
from repro import SyDWorld


class TestWorkloads:
    def test_population_builder(self):
        app = build_calendar_population(3, seed=1, occupancy=0.5)
        assert sorted(app.users) == ["u000", "u001", "u002"]
        occ = app.calendar("u000").occupancy()
        assert 0.2 < occ < 0.8  # probabilistic but seeded

    def test_population_deterministic(self):
        a = build_calendar_population(3, seed=5, occupancy=0.4)
        b = build_calendar_population(3, seed=5, occupancy=0.4)
        for u in a.users:
            assert a.calendar(u).free_slots(0, 4) == b.calendar(u).free_slots(0, 4)

    def test_population_zero_occupancy(self):
        app = build_calendar_population(2, seed=1)
        assert app.calendar("u000").occupancy() == 0.0

    def test_request_stream_deterministic(self):
        users = ["a", "b", "c", "d"]
        s1 = list(meeting_request_stream(users, 5, seed=3))
        s2 = list(meeting_request_stream(users, 5, seed=3))
        assert s1 == s2
        assert all(isinstance(r, MeetingRequest) for r in s1)

    def test_request_stream_no_self_invites(self):
        users = ["a", "b", "c"]
        for req in meeting_request_stream(users, 20, seed=1, group_size=3):
            assert req.initiator not in req.participants

    def test_request_priorities_bounded(self):
        for req in meeting_request_stream(["a", "b"], 20, seed=2, max_priority=3):
            assert 0 <= req.priority <= 3

    def test_quorum_request_carves_users(self):
        users = [f"u{i}" for i in range(12)]
        initiator, participants, must, groups = quorum_request(
            users, must=2, group_sizes=(4, 3), ks=(2, 1)
        )
        assert initiator == "u0"
        assert must == ["u1", "u2"]
        assert len(groups) == 2
        assert groups[0].k == 2 and len(groups[0].members) == 4
        assert len(participants) == 2 + 4 + 3


class TestMetrics:
    def test_measure_counts_traffic(self):
        world = SyDWorld(seed=1)
        world.add_node("a")
        world.add_node("b")
        with measure(world) as m:
            world.node("a").directory.lookup_user("b")
        assert m.messages == 2
        assert m.bytes > 0
        assert m.sim_elapsed > 0
        assert m.sim_latency == pytest.approx(m.sim_elapsed)

    def test_measure_empty_block(self):
        world = SyDWorld(seed=1)
        with measure(world) as m:
            pass
        assert m == Measurement()

    def test_format_table_alignment(self):
        text = format_table("T", ["col", "n"], [["a", 1], ["long-cell", 2.5]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert lines[1] == "="
        # header, separator, and the two data rows follow the title.
        assert "col" in lines[2]
        assert "long-cell" in lines[5]
        # Separator width matches the widest column.
        assert lines[3].split("  ")[0] == "-" * len("long-cell")

    def test_format_table_empty_rows(self):
        text = format_table("T", ["a"], [])
        assert "a" in text


class TestHarness:
    def test_experiment_registry_complete(self):
        assert set(ALL_EXPERIMENTS) == {
            "E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E8B", "E9",
            "E10", "E11", "E12", "E13", "E14", "E15", "E16", "E17", "E18",
        }

    @pytest.mark.parametrize("exp_id", ["E1", "E3", "E8B"])
    def test_run_experiment_fast(self, exp_id):
        table = run_experiment(exp_id, fast=True)
        assert table["rows"]
        assert len(table["columns"]) == len(table["rows"][0])
        assert table["id"].upper() == exp_id

    def test_e17_shape_and_gates(self):
        table = run_experiment("E17", fast=True)
        assert table["artifact"] == "BENCH_e17.json"
        assert [r[0] for r in table["rows"]] == ["hedged", "no-hedge", "no-health"]
        assert len(table["columns"]) == len(table["rows"][0])
        by_mode = {row[0]: row for row in table["rows"]}
        hedges_col = table["columns"].index("hedges")
        assert by_mode["hedged"][hedges_col] > 0
        assert by_mode["no-hedge"][hedges_col] == 0
        # The headline claims hold even at the reduced fast sweep.
        assert table["meta"]["hedged_p99_2x"] is True
        assert table["meta"]["msgs_within_1p15"] is True
