"""End-to-end heterogeneity: the calendar over all three store kinds.

Paper §2's core premise — devices may hold "a traditional database ...
a flat file ... or a list repository" — must be invisible to the
application. The whole meeting lifecycle is exercised with each user on
a different store kind.
"""

import pytest

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp
from repro.calendar.model import MeetingStatus


@pytest.fixture
def mixed_app():
    world = SyDWorld(seed=23)
    app = SyDCalendarApp(world)
    app.add_user("phil", store_kind="relational")
    app.add_user("andy", store_kind="flatfile")
    app.add_user("suzy", store_kind="list")
    return app


def test_store_kinds_actually_differ(mixed_app):
    kinds = {u: mixed_app.node(u).store.kind for u in ["phil", "andy", "suzy"]}
    assert kinds == {"phil": "relational", "andy": "flatfile", "suzy": "list"}


def test_schedule_across_mixed_stores(mixed_app):
    m = mixed_app.manager("phil").schedule_meeting("X", ["andy", "suzy"])
    assert m.status is MeetingStatus.CONFIRMED
    for user in ["phil", "andy", "suzy"]:
        assert mixed_app.calendar(user).slot_of(m.slot)["status"] == "reserved"


def test_link_tables_work_on_all_kinds(mixed_app):
    m = mixed_app.manager("phil").schedule_meeting("X", ["andy", "suzy"])
    # Every node stores its links in its own (heterogeneous) store.
    for user in ["andy", "suzy"]:
        links = mixed_app.node(user).links.links_by_context("meeting_id", m.meeting_id)
        assert len(links) == 1


def test_tentative_promotion_across_mixed_stores(mixed_app):
    app = mixed_app
    for row in app.calendar("andy").free_slots(0, 4):
        app.service("andy").block({"day": row["day"], "hour": row["hour"]})
    m = app.manager("phil").schedule_meeting("X", ["andy", "suzy"])
    assert m.status is MeetingStatus.TENTATIVE
    app.service("andy").unblock(m.slot)
    assert app.meeting_view("phil", m.meeting_id).status is MeetingStatus.CONFIRMED


def test_cancel_cascade_across_mixed_stores(mixed_app):
    m = mixed_app.manager("phil").schedule_meeting("X", ["andy", "suzy"])
    mixed_app.manager("phil").cancel_meeting(m.meeting_id)
    for user in ["phil", "andy", "suzy"]:
        assert mixed_app.calendar(user).slot_of(m.slot)["status"] == "free"
        assert mixed_app.node(user).links.links_by_context("meeting_id", m.meeting_id) == []


def test_flatfile_state_survives_text_roundtrip(mixed_app):
    """The flat-file calendar is real text: dump/load preserves meetings."""
    m = mixed_app.manager("phil").schedule_meeting("X", ["andy", "suzy"])
    andy_store = mixed_app.node("andy").store
    dumped = {t: andy_store.dump(t) for t in andy_store.table_names()}

    from repro.datastore.flatfile import FlatFileStore

    restored = FlatFileStore("andy-restore")
    for table, text in dumped.items():
        restored.load(table, text)
    assert restored.get("slots", f"d{m.slot['day']}h{m.slot['hour']}")["status"] == "reserved"
    assert restored.get("meetings", m.meeting_id)["status"] == "confirmed"
