"""Calendar served through a proxy while the device is down (§5.2 + §5)."""

import pytest

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp
from repro.calendar.model import MeetingStatus
from repro.calendar.proxysupport import calendar_proxy_factory
from repro.kernel.listener import SyDListener
from repro.net.address import DeviceClass, NodeAddress
from repro.proxy.device import ProxiedDevice
from repro.proxy.nameserver import NameServerService
from repro.proxy.proxy import ProxyHost


@pytest.fixture
def proxied_calendar():
    world = SyDWorld(seed=33)
    app = SyDCalendarApp(world)
    for user in ["phil", "andy", "suzy"]:
        app.add_user(user)

    ns = NameServerService()
    ns_listener = SyDListener("syd-nameserver")
    ns_listener.publish_object(ns)
    world.transport.register(
        NodeAddress("syd-nameserver", DeviceClass.SERVER),
        lambda msg: ns_listener.handle_invoke(msg),
    )
    host = ProxyHost("proxy-1", world.transport, nameserver_node="syd-nameserver")
    host.register_factory("calendar", calendar_proxy_factory)

    device = ProxiedDevice(app.node("suzy"), "syd-nameserver")
    device.export_service("calendar", "suzy_calendar_SyD", "calendar")
    device.attach()
    return world, app, host, device


class TestQueriesViaProxy:
    def test_free_slots_served_while_down(self, proxied_calendar):
        world, app, host, device = proxied_calendar
        app.service("suzy").block({"day": 0, "hour": 9})
        device.sync()
        world.take_down("suzy")
        slots = app.node("phil").engine.execute("suzy", "calendar", "query_free_slots", 0, 0)
        assert {"day": 0, "hour": 9} not in slots
        assert {"day": 0, "hour": 10} in slots

    def test_meeting_copies_visible_via_proxy(self, proxied_calendar):
        world, app, host, device = proxied_calendar
        m = app.manager("phil").schedule_meeting("T", ["suzy"])
        device.sync()
        world.take_down("suzy")
        row = app.node("phil").engine.execute("suzy", "calendar", "get_meeting", m.meeting_id)
        assert row["status"] == "confirmed"


class TestSchedulingWithDownUser:
    def test_meeting_goes_tentative_not_unreachable(self, proxied_calendar):
        """With the proxy answering queries but refusing marks, a
        scheduling attempt degrades to a tentative meeting instead of
        erroring out."""
        world, app, host, device = proxied_calendar
        device.sync()
        world.take_down("suzy")
        m = app.manager("phil").schedule_meeting("T", ["andy", "suzy"])
        assert m.status is MeetingStatus.TENTATIVE
        assert m.missing == ["suzy"]
        assert "andy" in m.committed

    def test_reconnect_then_confirm(self, proxied_calendar):
        world, app, host, device = proxied_calendar
        device.sync()
        world.take_down("suzy")
        m = app.manager("phil").schedule_meeting("T", ["andy", "suzy"])
        world.bring_up("suzy")
        device.reconnect()
        assert app.manager("phil").confirm_tentative(m.meeting_id) is True
        assert app.calendar("suzy").slot_of(m.slot)["status"] == "reserved"

    def test_status_updates_replayed_at_handback(self, proxied_calendar):
        world, app, host, device = proxied_calendar
        m = app.manager("phil").schedule_meeting("T", ["suzy"])
        device.sync()
        world.take_down("suzy")
        # Cancellation happens while suzy is away: the proxy accepts the
        # status update + release and journals them.
        app.manager("phil").cancel_meeting(m.meeting_id)
        world.bring_up("suzy")
        replayed = device.reconnect()
        assert replayed >= 1
        assert app.calendar("suzy").slot_of(m.slot)["status"] == "free"
        assert (
            app.calendar("suzy").meeting(m.meeting_id).status is MeetingStatus.CANCELLED
        )
