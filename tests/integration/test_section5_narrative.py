"""The complete §5 narrative, replayed as one integration test.

The paper walks a single story: A calls a meeting with B, C, D; C cannot
be reserved, so the meeting is tentative with C holding a tentative back
link; C becomes available and the meeting converts to committed; D then
wants to change the schedule, which renegotiates with everyone; a higher
priority request to D bumps the meeting; and a supervisor's subscription
link degrades it when the supervisor changes their schedule.

Each step's postconditions are asserted against every involved calendar.
"""

import pytest

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp
from repro.calendar.model import MeetingStatus


@pytest.fixture
def story():
    world = SyDWorld(seed=55)
    app = SyDCalendarApp(world)
    for user in ["A", "B", "C", "D", "E"]:
        app.add_user(user)
    return world, app


def test_section5_story(story):
    world, app = story

    # --- "User A wants to call a meeting ... involving folks B, C, D" ----
    # C's calendar is fully booked: reservation can only be tentative.
    for row in app.calendar("C").free_slots(0, 4):
        app.service("C").block({"day": row["day"], "hour": row["hour"]})

    meeting = app.manager("A").schedule_meeting("Project sync", ["B", "C", "D"])
    assert meeting.status is MeetingStatus.TENTATIVE
    assert meeting.missing == ["C"]
    # "...reserve that slot in A's calendar" — held by the tentative meeting.
    for user in ["A", "B", "D"]:
        assert app.calendar(user).slot_of(meeting.slot)["status"] == "held"

    # "a tentative back link to A is queued up at the corresponding slots"
    c_links = app.node("C").links.links_by_context("meeting_id", meeting.meeting_id)
    assert [ln.subtype.value for ln in c_links] == ["tentative"]
    # "back subscription links to A from others are created"
    for user in ["B", "D"]:
        links = app.node(user).links.links_by_context("meeting_id", meeting.meeting_id)
        assert [ln.ltype.value for ln in links] == ["subscription"]
    # "The forward negotiation-and link to A, B, C and D are left in place."
    fwd = [
        ln
        for ln in app.node("A").links.links_by_context("meeting_id", meeting.meeting_id)
        if ln.context["role"] == "forward"
    ]
    assert len(fwd) == 1
    assert {r.user for r in fwd[0].refs} == {"B", "C", "D"}

    # --- "Whenever C becomes available ... a tentative meeting has been
    # converted to committed." ---------------------------------------------
    app.service("C").unblock(meeting.slot)
    now = app.meeting_view("A", meeting.meeting_id)
    assert now.status is MeetingStatus.CONFIRMED
    assert now.missing == []
    for user in ["A", "B", "C", "D"]:
        assert app.calendar(user).slot_of(meeting.slot)["status"] == "reserved"
    # "the target slots at A, B, C and D create negotiation links back"
    c_links = app.node("C").links.links_by_context("meeting_id", meeting.meeting_id)
    assert [ln.ltype.value for ln in c_links] == ["negotiation"]

    # --- "Now suppose, D wants to change the schedule for this meeting to
    # another slot." --------------------------------------------------------
    target = {"day": 1, "hour": 11}
    app.service("C").unblock(target)  # C has room at the new time too
    assert app.manager("D").request_move(meeting.meeting_id, target) is True
    moved = app.meeting_view("A", meeting.meeting_id)
    assert moved.slot == target
    for user in ["A", "B", "C", "D"]:
        assert app.calendar(user).slot_of(target)["meeting_id"] == meeting.meeting_id

    # "If not all can agree, then D would be unable to change the schedule."
    blocked_slot = {"day": 2, "hour": 9}
    app.service("B").block(blocked_slot)
    assert app.manager("D").request_move(meeting.meeting_id, blocked_slot) is False
    assert app.meeting_view("A", meeting.meeting_id).slot == target

    # --- "A higher priority request to D to commit to another meeting
    # would bump this meeting, and then this meeting would become
    # tentative" (we assert bumped + auto-reschedule per §6). -------------
    exec_meeting = app.manager("E").schedule_meeting(
        "Board prep", ["D"], priority=9, preferred_slot=target
    )
    assert exec_meeting.status is MeetingStatus.CONFIRMED
    assert app.calendar("D").slot_of(target)["meeting_id"] == exec_meeting.meeting_id
    bumped = app.meeting_view("A", meeting.meeting_id)
    assert bumped.status is MeetingStatus.BUMPED
    replacement_id = app.manager("A").reschedule_map[meeting.meeting_id]
    replacement = app.meeting_view("A", replacement_id)
    assert replacement.status in (MeetingStatus.CONFIRMED, MeetingStatus.TENTATIVE)
    assert replacement.slot != target


def test_section5_supervisor_story(story):
    """'Suppose B is a supervisor (a higher priority entity)...'"""
    world, app = story
    meeting = app.manager("A").schedule_meeting(
        "Review", ["B", "C"], supervisors=["B"]
    )
    assert meeting.status is MeetingStatus.CONFIRMED

    # "A would not be able to establish a negotiation back link from B,
    # but only a subscription back link."
    b_links = app.node("B").links.links_by_context("meeting_id", meeting.meeting_id)
    assert [ln.ltype.value for ln in b_links] == ["subscription"]
    c_links = app.node("C").links.links_by_context("meeting_id", meeting.meeting_id)
    assert [ln.ltype.value for ln in c_links] == ["negotiation"]

    # "If B does change his schedule, this change will trigger the
    # subscription back link to A ... then the meeting becomes tentative,
    # with ... the back link from B ... queued up at B's slot awaiting
    # change in B's status."
    app.service("B").withdraw_slot(meeting.slot, meeting.meeting_id)
    degraded = app.meeting_view("A", meeting.meeting_id)
    assert degraded.status is MeetingStatus.TENTATIVE
    assert degraded.missing == ["B"]
    b_links = app.node("B").links.links_by_context("meeting_id", meeting.meeting_id)
    assert any(ln.subtype.value == "tentative" for ln in b_links)

    # B's slot frees again -> the tentative link fires -> re-confirmed.
    app.service("B")._fire_availability(meeting.slot)
    assert app.meeting_view("A", meeting.meeting_id).status is MeetingStatus.CONFIRMED
