"""Shared fixtures for the whole test suite."""

import pytest

from repro import SyDWorld
from repro.device.resource import ResourceObject


@pytest.fixture
def world():
    """A fresh simulated SyD world."""
    return SyDWorld(seed=7)


@pytest.fixture
def trio(world):
    """Three users (a, b, c), each publishing a 'res' resource service
    with two free entities, slot1 and slot2."""
    nodes = {}
    for user in ["a", "b", "c"]:
        node = world.add_node(user)
        obj = ResourceObject(f"{user}_res", node.store, node.locks)
        node.listener.publish_object(obj, user_id=user, service="res")
        obj.add("slot1")
        obj.add("slot2")
        node.res_obj = obj  # test-only handle to the published object
        nodes[user] = node
    return nodes
