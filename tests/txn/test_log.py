"""Tests for the transaction logs: audit trail and durable intents."""

from repro.datastore.store import RelationalStore
from repro.txn.coordinator import NegotiationResult
from repro.txn.log import IntentLog, TransactionLog
from repro.util.clock import VirtualClock


def result(txn_id, ok=True, **kw):
    return NegotiationResult(ok=ok, constraint="and", txn_id=txn_id, **kw)


class TestTransactionLog:
    def test_records_preserve_append_order(self):
        clock = VirtualClock()
        log = TransactionLog(clock)
        log.record(result("t1"))
        clock.advance(2.0)
        log.record(result("t2", ok=False, failure_reason="refused"))
        clock.advance(1.0)
        log.record(result("t3"))
        recs = log.records()
        assert [r.txn_id for r in recs] == ["t1", "t2", "t3"]
        assert [r.t for r in recs] == [0.0, 2.0, 3.0]
        assert recs[1].failure_reason == "refused"
        assert len(log) == 3

    def test_commit_abort_counts_and_rate(self):
        log = TransactionLog()
        log.record(result("t1"))
        log.record(result("t2", ok=False))
        log.record(result("t3", ok=False))
        assert log.commits == 1 and log.aborts == 2
        assert abs(log.commit_rate() - 1 / 3) < 1e-12

    def test_commit_rate_zero_transactions(self):
        # The zero-txn edge: no division error, rate is simply 0.
        assert TransactionLog().commit_rate() == 0.0
        assert len(TransactionLog()) == 0


class TestIntentLogVolatile:
    def test_presumed_abort_for_unknown(self):
        log = IntentLog()
        assert not log.durable
        assert log.status("txn-x-1") == "abort"
        assert not log.has_commit("txn-x-1")
        assert not log.known("txn-x-1")

    def test_lifecycle_and_in_flight_order(self):
        log = IntentLog()
        log.begin("t1", {"change": None})
        log.begin("t2")
        log.begin("t3")
        log.decide("t2", "commit", {"locked": []})
        log.end("t1", "abort")
        assert [t for t, _ in log.in_flight()] == ["t2", "t3"]
        assert log.status("t1") == "abort"
        assert log.status("t2") == "commit"
        assert log.status("t3") == "abort"   # begun, undecided -> abort
        assert log.has_commit("t2")
        assert len(log) == 3

    def test_restart_wipes_volatile_log(self):
        log = IntentLog()
        log.begin("t1")
        log.decide("t1", "commit")
        log.restart()
        # The ablation's failure mode: pre-crash decisions are gone.
        assert log.status("t1") == "abort"
        assert log.in_flight() == []
        assert len(log) == 0


class TestIntentLogDurable:
    def test_restart_reloads_from_store(self):
        store = RelationalStore("intents")
        log = IntentLog(store=store, clock=VirtualClock())
        log.begin("t1", {"change": {"status": "reserved"}})
        log.decide("t1", "commit", {"locked": [{"user": "b"}]})
        log.begin("t2")
        log.end("t1", "commit")
        log.restart()
        assert log.status("t1") == "commit"
        assert log.in_flight() == [
            ("t2", {"begin": None, "decision": None, "ended": None})
        ]
        entry = dict(log._txns["t1"])
        assert entry["begin"] == {"change": {"status": "reserved"}}
        assert entry["decision"] == ("commit", {"locked": [{"user": "b"}]})
        assert entry["ended"] == "commit"

    def test_fresh_log_over_same_store_sees_history(self):
        # A brand-new IntentLog over the crashed node's store (what a
        # power-cycle constructs) replays the records and continues the
        # record sequence without colliding.
        store = RelationalStore("intents")
        first = IntentLog(store=store)
        first.begin("t1")
        second = IntentLog(store=store)
        assert [t for t, _ in second.in_flight()] == ["t1"]
        second.end("t1", "abort")
        assert len(store.select(IntentLog.TABLE)) == 2
        assert second.status("t1") == "abort"
