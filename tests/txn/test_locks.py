"""Tests for the entity lock manager."""

import pytest

from repro.txn.locks import LockManager
from repro.util.errors import LockNotHeldError, LockUnavailableError


def test_try_lock_free_entity():
    lm = LockManager()
    assert lm.try_lock("slot", "t1")
    assert lm.holder("slot") == "t1"
    assert lm.is_locked("slot")


def test_try_lock_held_by_other_refused():
    lm = LockManager()
    lm.try_lock("slot", "t1")
    assert not lm.try_lock("slot", "t2")
    assert lm.refusals == 1


def test_reentrant_for_same_owner():
    lm = LockManager()
    assert lm.try_lock("slot", "t1")
    assert lm.try_lock("slot", "t1")
    lm.unlock("slot", "t1")
    assert lm.is_locked("slot")  # depth 2 -> 1
    lm.unlock("slot", "t1")
    assert not lm.is_locked("slot")


def test_lock_raises_when_unavailable():
    lm = LockManager()
    lm.lock("slot", "t1")
    with pytest.raises(LockUnavailableError):
        lm.lock("slot", "t2")


def test_unlock_not_held_raises():
    lm = LockManager()
    with pytest.raises(LockNotHeldError):
        lm.unlock("slot", "t1")
    lm.lock("slot", "t1")
    with pytest.raises(LockNotHeldError):
        lm.unlock("slot", "t2")


def test_release_all():
    lm = LockManager()
    lm.lock("a", "t1")
    lm.lock("b", "t1")
    lm.lock("c", "t2")
    assert lm.release_all("t1") == 2
    assert lm.locked_count() == 1
    assert lm.holder("c") == "t2"


def test_jsonish_entity_keys_canonicalized():
    lm = LockManager()
    assert lm.try_lock({"day": 3, "hour": 9}, "t1")
    # Same logical entity, different dict ordering.
    assert not lm.try_lock({"hour": 9, "day": 3}, "t2")
    assert lm.try_lock(["x", {"a": 1}], "t3")
    assert lm.holder(["x", {"a": 1}]) == "t3"


def test_acquisition_counter():
    lm = LockManager()
    lm.try_lock("a", "t")
    lm.try_lock("a", "t")
    assert lm.acquisitions == 2
