"""Tests for the entity lock manager."""

import pytest

from repro.txn.locks import LockManager
from repro.util.clock import VirtualClock
from repro.util.errors import (
    LockNotHeldError,
    LockOwnerError,
    LockUnavailableError,
)


def test_try_lock_free_entity():
    lm = LockManager()
    assert lm.try_lock("slot", "t1")
    assert lm.holder("slot") == "t1"
    assert lm.is_locked("slot")


def test_try_lock_held_by_other_refused():
    lm = LockManager()
    lm.try_lock("slot", "t1")
    assert not lm.try_lock("slot", "t2")
    assert lm.refusals == 1


def test_reentrant_for_same_owner():
    lm = LockManager()
    assert lm.try_lock("slot", "t1")
    assert lm.try_lock("slot", "t1")
    lm.unlock("slot", "t1")
    assert lm.is_locked("slot")  # depth 2 -> 1
    lm.unlock("slot", "t1")
    assert not lm.is_locked("slot")


def test_lock_raises_when_unavailable():
    lm = LockManager()
    lm.lock("slot", "t1")
    with pytest.raises(LockUnavailableError):
        lm.lock("slot", "t2")


def test_unlock_not_held_raises():
    lm = LockManager()
    with pytest.raises(LockNotHeldError):
        lm.unlock("slot", "t1")
    lm.lock("slot", "t1")
    with pytest.raises(LockNotHeldError):
        lm.unlock("slot", "t2")


def test_unlock_wrong_owner_raises_typed_owner_error():
    lm = LockManager()
    lm.lock("slot", "t1")
    # Wrong-owner release is the *typed* subclass; an unheld entity is
    # the plain LockNotHeldError (previous test) — callers can tell a
    # stale compensation apart from a racing one.
    with pytest.raises(LockOwnerError):
        lm.unlock("slot", "t2")
    assert issubclass(LockOwnerError, LockNotHeldError)
    assert lm.holder("slot") == "t1"  # the held lock survived the attempt


def test_release_all():
    lm = LockManager()
    lm.lock("a", "t1")
    lm.lock("b", "t1")
    lm.lock("c", "t2")
    assert lm.release_all("t1") == 2
    assert lm.locked_count() == 1
    assert lm.holder("c") == "t2"


def test_jsonish_entity_keys_canonicalized():
    lm = LockManager()
    assert lm.try_lock({"day": 3, "hour": 9}, "t1")
    # Same logical entity, different dict ordering.
    assert not lm.try_lock({"hour": 9, "day": 3}, "t2")
    assert lm.try_lock(["x", {"a": 1}], "t3")
    assert lm.holder(["x", {"a": 1}]) == "t3"


def test_acquisition_counter():
    lm = LockManager()
    lm.try_lock("a", "t")
    lm.try_lock("a", "t")
    assert lm.acquisitions == 2


def test_release_prefix_overlapping_txn_ids():
    lm = LockManager()
    lm.try_lock("e1", "txn-a-1")
    lm.try_lock("e2", "txn-a-2")
    lm.try_lock("e3", "txn-ab-1")  # overlapping node name, different prefix
    lm.try_lock("e4", "txn-b-1")
    assert lm.release_prefix("txn-a-") == 2
    assert not lm.is_locked("e1") and not lm.is_locked("e2")
    assert lm.holder("e3") == "txn-ab-1"
    assert lm.holder("e4") == "txn-b-1"


class TestLeases:
    def test_no_clock_means_no_expiry(self):
        lm = LockManager()
        lm.try_lock("e", "t1")
        assert lm.expired(1e9) == []

    def test_expired_after_lease_and_sorted(self):
        clock = VirtualClock()
        lm = LockManager(clock=clock, default_lease=20.0)
        lm.try_lock("b-ent", "t1")
        clock.advance(5.0)
        lm.try_lock("a-ent", "t2")
        clock.advance(14.0)  # t=19: nothing due yet
        assert lm.expired(clock.now()) == []
        clock.advance(7.0)   # t=26: both leases (20, 25) passed
        assert lm.expired(clock.now()) == [
            ("b-ent", "t1", 20.0),
            ("a-ent", "t2", 25.0),
        ]

    def test_reacquisition_refreshes_lease(self):
        clock = VirtualClock()
        lm = LockManager(clock=clock, default_lease=20.0)
        lm.try_lock("e", "t1")
        clock.advance(15.0)
        lm.try_lock("e", "t1")  # reentrant re-acquisition re-stamps
        clock.advance(10.0)     # t=25 < 15+20
        assert lm.expired(clock.now()) == []

    def test_renew_pushes_deadline_out(self):
        clock = VirtualClock()
        lm = LockManager(clock=clock, default_lease=20.0)
        lm.try_lock("e", "t1")
        clock.advance(25.0)
        assert lm.expired(clock.now()) != []
        assert lm.renew("e", "t1")
        assert lm.expired(clock.now()) == []
        assert not lm.renew("e", "t2")       # wrong owner
        assert not lm.renew("other", "t1")   # not locked

    def test_force_release_drops_whole_reentrant_stack(self):
        clock = VirtualClock()
        lm = LockManager(clock=clock)
        lm.try_lock("e", "t1")
        lm.try_lock("e", "t1")  # depth 2
        assert lm.force_release("e") == "t1"
        assert not lm.is_locked("e")
        assert lm.forced_releases == 1
        assert lm.force_release("e") is None  # idempotent
        assert lm.expired(1e9) == []          # deadline went with the lock

    def test_unlock_to_zero_clears_deadline(self):
        clock = VirtualClock()
        lm = LockManager(clock=clock)
        lm.try_lock("e", "t1")
        lm.unlock("e", "t1")
        clock.advance(100.0)
        assert lm.expired(clock.now()) == []
