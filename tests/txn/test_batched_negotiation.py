"""Negotiation over scatter-gather batches stays all-or-nothing.

The coordinator now sends each protocol phase (mark, change, unmark) as
one concurrent batch. These tests pin the §4.3 guarantees under per-leg
faults: an unreachable target is a refusal, not an abort of the batch;
AND with a dead member changes nothing anywhere; OR commits only on the
reachable members; and the sequential ablation (``batching = False``)
reaches byte-identical results.
"""

import pytest

from repro.txn.coordinator import AND, OR, Participant, at_least


def part(user, entity="slot1"):
    return Participant(user, entity, "res")


def status_of(nodes, user, key="slot1"):
    return nodes[user].store.get("resources", key)["status"]


class TestFaultsPerLeg:
    def test_and_with_dead_member_changes_nothing_anywhere(self, world, trio):
        world.take_down("c")
        result = trio["a"].coordinator.execute(part("a"), [part("b"), part("c")], AND)
        assert not result.ok
        assert result.refused == ["c"]
        assert result.changed == []
        assert status_of(trio, "a") == "free"
        assert status_of(trio, "b") == "free"

    def test_or_with_dead_member_commits_on_the_reachable(self, world, trio):
        world.take_down("c")
        result = trio["a"].coordinator.execute(part("a"), [part("b"), part("c")], OR)
        assert result.ok
        assert result.locked == ["b"]
        assert result.refused == ["c"]
        assert status_of(trio, "a") == "reserved"
        assert status_of(trio, "b") == "reserved"
        world.bring_up("c")
        assert status_of(trio, "c") == "free"

    def test_k_of_n_survives_one_dead_member(self, world, trio):
        world.take_down("b")
        result = trio["a"].coordinator.execute(
            part("a"), [part("b"), part("c")], at_least(1)
        )
        assert result.ok
        assert result.locked == ["c"]

    def test_all_targets_dead_aborts_cleanly(self, world, trio):
        world.take_down("b")
        world.take_down("c")
        result = trio["a"].coordinator.execute(part("a"), [part("b"), part("c")], OR)
        assert not result.ok
        assert "constraint" in (result.failure_reason or "")
        assert status_of(trio, "a") == "free"

    def test_remote_crash_in_mark_phase_counts_as_refusal(self, trio):
        # b's mark handler explodes; the crash surfaces as a RemoteError
        # leg outcome (a NetworkError), so — exactly as in the sequential
        # protocol — b refuses, the AND aborts, and every acquired lock
        # is released.
        def boom(entity, txn_id, *args):
            raise RuntimeError("marker corrupted")

        registry = trio["b"].listener.registry
        registry.unregister("b_res", "mark")
        registry.register("b_res", "mark", boom)
        result = trio["a"].coordinator.execute(part("a"), [part("b"), part("c")], AND)
        assert not result.ok
        assert "b" in result.refused
        assert trio["a"].locks.locked_count() == 0
        assert trio["c"].locks.locked_count() == 0
        assert status_of(trio, "c") == "free"


class TestBatchedEqualsSequential:
    @pytest.mark.parametrize("constraint", [AND, OR])
    def test_same_outcome_and_messages(self, constraint):
        from repro.world import SyDWorld
        from repro.device.resource import ResourceObject

        outcomes = {}
        for batching in (True, False):
            world = SyDWorld(seed=7)
            nodes = {}
            for user in ["a", "b", "c"]:
                node = world.add_node(user)
                obj = ResourceObject(f"{user}_res", node.store, node.locks)
                node.listener.publish_object(obj, user_id=user, service="res")
                obj.add("slot1")
                nodes[user] = node
                node.engine.batching = batching
            world.take_down("c")
            result = nodes["a"].coordinator.execute(
                part("a"), [part("b"), part("c")], constraint
            )
            outcomes[batching] = (
                result.ok,
                result.locked,
                result.refused,
                result.changed,
                world.stats.messages,
                status_of(nodes, "a"),
                status_of(nodes, "b"),
            )
        assert outcomes[True] == outcomes[False]

    def test_two_batched_runs_are_deterministic(self):
        from repro.world import SyDWorld
        from repro.device.resource import ResourceObject

        snapshots = []
        for _ in range(2):
            world = SyDWorld(seed=11)
            nodes = {}
            for user in ["a", "b", "c", "d"]:
                node = world.add_node(user)
                obj = ResourceObject(f"{user}_res", node.store, node.locks)
                node.listener.publish_object(obj, user_id=user, service="res")
                obj.add("slot1")
                nodes[user] = node
            nodes["a"].coordinator.execute(
                part("a"), [part("b"), part("c"), part("d")], AND
            )
            snapshots.append((world.now, world.stats.snapshot()))
        assert snapshots[0] == snapshots[1]
