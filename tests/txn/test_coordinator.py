"""Tests for negotiation execution (§4.3 semantics).

The ``trio`` fixture gives users a/b/c each exposing a ResourceObject
('res' service) with free entities slot1/slot2.
"""

import pytest

from repro.txn.coordinator import (
    AND,
    OR,
    XOR,
    Constraint,
    ConstraintKind,
    Participant,
    at_least,
    exactly,
)
from repro.txn.log import TransactionLog


def part(user, entity="slot1"):
    return Participant(user, entity, "res")


def status_of(nodes, user, key="slot1"):
    from repro.datastore.predicate import where  # noqa: F401

    return nodes[user].store.get("resources", key)["status"]


class TestConstraint:
    def test_and_needs_all(self):
        assert AND.satisfied(3, 3)
        assert not AND.satisfied(2, 3)

    def test_or_needs_one(self):
        assert OR.satisfied(1, 5)
        assert not OR.satisfied(0, 5)

    def test_xor_needs_exactly_one(self):
        assert XOR.satisfied(1, 3)
        assert not XOR.satisfied(2, 3)
        assert not XOR.satisfied(0, 3)

    def test_k_of_n(self):
        assert at_least(2).satisfied(2, 5)
        assert at_least(2).satisfied(4, 5)
        assert not at_least(2).satisfied(1, 5)
        assert exactly(2).satisfied(2, 5)
        assert not exactly(2).satisfied(3, 5)

    def test_k_required(self):
        with pytest.raises(ValueError):
            Constraint(ConstraintKind.AT_LEAST_K)

    def test_describe(self):
        assert AND.describe() == "and"
        assert at_least(3).describe() == "at_least_k(k=3)"


class TestNegotiationAnd:
    def test_all_free_commits_everywhere(self, trio):
        a = trio["a"]
        result = a.coordinator.execute(part("a"), [part("b"), part("c")], AND)
        assert result.ok
        assert result.changed == ["a", "b", "c"]
        for user in "abc":
            assert status_of(trio, user) == "reserved"

    def test_one_busy_aborts_everywhere(self, trio):
        trio["c"].store.update("resources", None, {"status": "busy"})
        a = trio["a"]
        result = a.coordinator.execute(part("a"), [part("b"), part("c")], AND)
        assert not result.ok
        assert result.refused == ["c"]
        assert "constraint and not met" in result.failure_reason
        # Atomicity: nothing changed anywhere; no locks left behind.
        assert status_of(trio, "a") == "free"
        assert status_of(trio, "b") == "free"
        for user in "abc":
            assert trio[user].locks.locked_count() == 0

    def test_unreachable_target_counts_as_refusal(self, trio, world):
        world.take_down("b")
        result = trio["a"].coordinator.execute(part("a"), [part("b"), part("c")], AND)
        assert not result.ok
        assert result.refused == ["b"]
        assert status_of(trio, "c") == "free"

    def test_initiator_busy_aborts_immediately(self, trio):
        trio["a"].store.update("resources", None, {"status": "busy"})
        result = trio["a"].coordinator.execute(part("a"), [part("b")], AND)
        assert not result.ok
        assert "initiator" in result.failure_reason
        assert status_of(trio, "b") == "free"

    def test_no_locks_left_after_commit(self, trio):
        trio["a"].coordinator.execute(part("a"), [part("b"), part("c")], AND)
        for user in "abc":
            assert trio[user].locks.locked_count() == 0


class TestNegotiationOr:
    def test_one_available_is_enough(self, trio):
        trio["b"].store.update("resources", None, {"status": "busy"})
        result = trio["a"].coordinator.execute(part("a"), [part("b"), part("c")], OR)
        assert result.ok
        assert result.changed == ["a", "c"]
        assert status_of(trio, "b") == "busy"   # refused target untouched
        assert status_of(trio, "c") == "reserved"

    def test_none_available_aborts(self, trio):
        for u in "bc":
            trio[u].store.update("resources", None, {"status": "busy"})
        result = trio["a"].coordinator.execute(part("a"), [part("b"), part("c")], OR)
        assert not result.ok
        assert status_of(trio, "a") == "free"


class TestNegotiationXor:
    def test_exactly_one_commits(self, trio):
        trio["b"].store.update("resources", None, {"status": "busy"})
        result = trio["a"].coordinator.execute(part("a"), [part("b"), part("c")], XOR)
        assert result.ok
        assert result.changed == ["a", "c"]

    def test_two_available_aborts(self, trio):
        result = trio["a"].coordinator.execute(part("a"), [part("b"), part("c")], XOR)
        assert not result.ok
        # Both were locked during negotiation but nothing changed.
        assert status_of(trio, "b") == "free"
        assert status_of(trio, "c") == "free"
        for user in "abc":
            assert trio[user].locks.locked_count() == 0


class TestKofN:
    def test_at_least_k_met(self, trio):
        trio["b"].store.update("resources", None, {"status": "busy"})
        result = trio["a"].coordinator.execute(
            part("a"), [part("b"), part("c")], at_least(1)
        )
        assert result.ok

    def test_at_least_k_not_met(self, trio):
        trio["b"].store.update("resources", None, {"status": "busy"})
        result = trio["a"].coordinator.execute(
            part("a"), [part("b"), part("c")], at_least(2)
        )
        assert not result.ok

    def test_exactly_k(self, trio):
        result = trio["a"].coordinator.execute(
            part("a"), [part("b"), part("c")], exactly(2)
        )
        assert result.ok
        assert set(result.changed) == {"a", "b", "c"}


class TestChangePayload:
    def test_custom_change_applied(self, trio):
        result = trio["a"].coordinator.execute(
            part("a"), [part("b")], AND, change={"status": "meeting", "value": {"id": 7}}
        )
        assert result.ok
        row = trio["b"].store.get("resources", "slot1")
        assert row["status"] == "meeting"
        assert row["value"] == {"id": 7}


class TestContention:
    def test_second_negotiation_for_same_slot_fails(self, trio):
        a = trio["a"]
        r1 = a.coordinator.execute(part("a"), [part("b"), part("c")], AND)
        assert r1.ok
        # Slot now reserved everywhere; a new AND negotiation must fail.
        r2 = trio["b"].coordinator.execute(part("b"), [part("a"), part("c")], AND)
        assert not r2.ok

    def test_disjoint_entities_do_not_interfere(self, trio):
        r1 = trio["a"].coordinator.execute(part("a", "slot1"), [part("b", "slot1")], AND)
        r2 = trio["a"].coordinator.execute(part("a", "slot2"), [part("c", "slot2")], AND)
        assert r1.ok and r2.ok


class TestCountersAndLog:
    def test_coordinator_counters(self, trio):
        a = trio["a"]
        a.coordinator.execute(part("a"), [part("b")], AND)
        trio["b"].store.update("resources", None, {"status": "busy"})
        a.coordinator.execute(part("a", "slot2"), [part("b")], AND)
        assert a.coordinator.executed == 2
        assert a.coordinator.committed == 1

    def test_transaction_log(self, trio, world):
        log = TransactionLog(world.clock)
        r = trio["a"].coordinator.execute(part("a"), [part("b")], AND)
        rec = log.record(r)
        assert rec.ok and rec.changed == 2
        assert log.commits == 1 and log.aborts == 0
        assert log.commit_rate() == 1.0

    def test_log_empty_rate(self):
        assert TransactionLog().commit_rate() == 0.0
