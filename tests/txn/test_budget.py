"""Deadline budgets, lease-overrun audit and backpressure on the
NegotiationCoordinator (gray-failure robustness)."""

import pytest

from repro.device.resource import ResourceObject
from repro.net.retry import RetryPolicy
from repro.txn.coordinator import AND, Participant
from repro.util.errors import Overloaded
from repro.world import SyDWorld


def build_trio(health):
    world = SyDWorld(seed=7, health=health)
    nodes = {}
    for user in ["a", "b", "c"]:
        node = world.add_node(user)
        obj = ResourceObject(f"{user}_res", node.store, node.locks)
        node.listener.publish_object(obj, user_id=user, service="res")
        obj.add("slot1")
        nodes[user] = node
    world.set_retry_policy(
        RetryPolicy(max_attempts=4, base_delay=0.2, max_delay=2.0, jitter=0.5)
    )
    return world, nodes


def part(user):
    return Participant(user, "slot1", "res")


class TestLeaseBudget:
    def test_world_derives_budget_from_the_lease(self):
        world, nodes = build_trio(health=True)
        coord = nodes["a"].coordinator
        assert coord.lease_budget == pytest.approx(0.5 * coord.lease_limit)

    def test_no_health_means_no_budget(self):
        world, nodes = build_trio(health=False)
        assert nodes["a"].coordinator.lease_budget is None

    def test_healthy_negotiation_commits_under_budget(self):
        world, nodes = build_trio(health=True)
        result = nodes["a"].coordinator.execute(part("a"), [part("b")], AND)
        assert result.ok
        assert nodes["a"].coordinator.lease_overruns == []

    def test_retry_storm_against_stalled_participant_gives_up_before_lease(self):
        """Satellite (c): a 45s stall must not hold the protocol hostage —
        with budgets on, the whole negotiation (retries, epilogue and
        all) resolves before one default lease (20s) elapses."""
        world, nodes = build_trio(health=True)
        coord = nodes["a"].coordinator
        world.transport.faults.stall_node(nodes["b"].node_id, delay=45.0)
        t0 = world.clock.now()
        result = coord.execute(part("a"), [part("b"), part("c")], AND)
        held = world.clock.now() - t0
        assert not result.ok
        # The stalled mark surfaces as a refusal (its deadline ran out),
        # so the AND aborts — well inside the lease.
        assert "b" in result.refused
        assert held < coord.lease_limit
        assert coord.lease_overruns == []
        # Locks were not stranded: the epilogue's compensating unmarks
        # were *delivered* (only their replies stalled).
        for node in nodes.values():
            assert node.locks.locked_count() == 0

    def test_without_budgets_the_stall_overruns_and_is_audited(self):
        world, nodes = build_trio(health=False)
        coord = nodes["a"].coordinator
        world.transport.faults.stall_node(nodes["b"].node_id, delay=45.0)
        result = coord.execute(part("a"), [part("b"), part("c")], AND)
        assert result.ok  # the stall only slows it; nothing fails
        assert len(coord.lease_overruns) == 1
        txn_id, held, limit = coord.lease_overruns[0]
        assert held > limit == coord.lease_limit

    def test_budget_abort_is_durable_abort_not_limbo(self):
        world, nodes = build_trio(health=True)
        coord = nodes["a"].coordinator
        world.transport.faults.stall_node(nodes["b"].node_id, delay=45.0)
        result = coord.execute(part("a"), [part("b")], AND)
        assert not result.ok
        assert not coord.intents.has_commit(result.txn_id)
        # Nothing changed anywhere.
        assert nodes["b"].store.get("resources", "slot1")["status"] == "free"


class TestBackpressure:
    def test_admission_limit_sheds_with_typed_retryable_error(self):
        world, nodes = build_trio(health=True)
        coord = nodes["a"].coordinator
        coord.admission_limit = 0
        with pytest.raises(Overloaded, match="admission limit"):
            coord.execute(part("a"), [part("b")], AND)
        assert coord.shed == 1
        assert world.metrics.counter(nodes["a"].node_id, "txn.shed") == 1

    def test_shed_request_left_no_protocol_traffic(self):
        world, nodes = build_trio(health=True)
        coord = nodes["a"].coordinator
        coord.admission_limit = 0
        before = world.stats.messages
        with pytest.raises(Overloaded):
            coord.execute(part("a"), [part("b")], AND)
        assert world.stats.messages == before
        assert coord.executed == 0

    def test_overloaded_is_a_network_error(self):
        from repro.util.errors import NetworkError

        assert issubclass(Overloaded, NetworkError)
