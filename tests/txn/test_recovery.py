"""Coordinator crash recovery: durable intents, presumed abort, roll-forward.

A ``coord_crash`` arms :class:`CoordinatorCrashed` at a protocol phase;
the coordinator then skips its unlock/END epilogue exactly as a process
death would. ``SyDWorld.restart`` replays the durable intent log:
transactions with a ``DECIDE(commit)`` roll forward, everything else
rolls back (presumed abort). ``txn_status`` must answer consistently
with the pre-crash decisions before *and* after the restart.
"""

import pytest

from repro.device.object import exported
from repro.device.resource import ResourceObject
from repro.txn.coordinator import AND, Participant
from repro.txn.status import TXN_STATUS_OBJECT, coordinator_node_of
from repro.util.errors import CoordinatorCrashed, TransactionError


def part(user, entity="slot1"):
    return Participant(user, entity, "res")


def status_of(nodes, user, key="slot1"):
    return nodes[user].store.get("resources", key)["status"]


def crash_at(trio, phase):
    """Arm ``phase``, run one a->{b,c} negotiation into the wall, and
    return the txn id it died holding."""
    a = trio["a"]
    a.coordinator.arm_crash(phase)
    with pytest.raises(CoordinatorCrashed):
        a.coordinator.execute(part("a"), [part("b"), part("c")], AND)
    return f"txn-{a.engine.node_id}-{a.coordinator._txn_counter}"


def test_coordinator_node_of():
    assert coordinator_node_of("txn-u0-device-42") == "u0-device"
    assert coordinator_node_of("txn-a-device-1") == "a-device"
    assert coordinator_node_of("mtg-u0-7") is None
    assert coordinator_node_of("garbage") is None


class TestCrashAfterMark:
    def test_locks_stranded_then_presumed_abort(self, trio, world):
        txn = crash_at(trio, "after-mark")
        # The epilogue was skipped: every mark is still locked.
        for user in "abc":
            assert trio[user].locks.locked_count() == 1
        world.restart("a")
        assert trio["a"].coordinator.recovered_aborts == 1
        assert trio["a"].coordinator.intents.status(txn) == "abort"
        for user in "abc":
            assert trio[user].locks.locked_count() == 0
            assert status_of(trio, user) == "free"

    def test_busy_never_sticks_after_crash(self, trio):
        crash_at(trio, "after-mark")
        assert not trio["a"].coordinator.busy
        assert trio["a"].coordinator.active_txns() == frozenset()


class TestCrashAfterDecide:
    def test_commit_rolls_forward(self, trio, world):
        txn = crash_at(trio, "after-decide")
        # Decision went durable before any change leg ran.
        assert trio["a"].coordinator.intents.has_commit(txn)
        assert status_of(trio, "b") == "free"
        world.restart("a")
        assert trio["a"].coordinator.recovered_commits == 1
        # Roll-forward re-sent the change wave and unlocked everywhere.
        for user in "abc":
            assert status_of(trio, user) == "reserved"
            assert trio[user].locks.locked_count() == 0
        assert trio["a"].coordinator.intents.status(txn) == "commit"

    def test_recovery_is_idempotent(self, trio, world):
        crash_at(trio, "after-decide")
        world.restart("a")
        # A second power-cycle finds no in-flight transactions.
        world.restart("a")
        assert trio["a"].coordinator.recovered_commits == 1
        for user in "abc":
            assert status_of(trio, user) == "reserved"


class TestCrashAfterPartialChange:
    def test_partial_change_completes(self, trio, world):
        crash_at(trio, "after-partial-change")
        # The initiator changed before dying; the targets did not.
        assert status_of(trio, "a") == "reserved"
        assert status_of(trio, "b") == "free"
        world.restart("a")
        for user in "abc":
            assert status_of(trio, user) == "reserved"
            assert trio[user].locks.locked_count() == 0


class TestTxnStatusAcrossRestart:
    def test_answers_match_pre_crash_decisions(self, trio, world):
        a = trio["a"]
        for user in "ab":
            trio[user].res_obj.add("slot3")
        committed = a.coordinator.execute(part("a"), [part("b")], AND)
        assert committed.ok
        a.coordinator.arm_crash("after-mark")
        with pytest.raises(CoordinatorCrashed):
            a.coordinator.execute(part("a", "slot2"), [part("b", "slot2")], AND)
        crashed = f"txn-{a.engine.node_id}-{a.coordinator._txn_counter}"
        a.coordinator.arm_crash("after-decide")
        with pytest.raises(CoordinatorCrashed):
            a.coordinator.execute(part("a", "slot3"), [part("b", "slot3")], AND)
        decided = f"txn-{a.engine.node_id}-{a.coordinator._txn_counter}"

        def ask(txn_id):
            return trio["b"].engine.execute_on_node(
                a.engine.node_id, TXN_STATUS_OBJECT, "txn_status", txn_id
            )

        before = {t: ask(t) for t in (committed.txn_id, crashed, decided)}
        assert before == {
            committed.txn_id: "commit", crashed: "abort", decided: "commit"
        }
        world.restart("a")
        after = {t: ask(t) for t in (committed.txn_id, crashed, decided)}
        assert after == before
        # Never-begun transactions are presumed aborted.
        assert ask(f"txn-{a.engine.node_id}-999") == "abort"

    def test_service_counts_queries(self, trio):
        a = trio["a"]
        trio["b"].engine.execute_on_node(
            a.engine.node_id, TXN_STATUS_OBJECT, "txn_status", "txn-x-1"
        )
        assert a.txn_status.queries == 1


class TestProtocolErrorEpilogue:
    def test_busy_clears_and_log_ends_on_protocol_error(self, trio, world):
        class ExplodingResource(ResourceObject):
            @exported
            def mark(self, key, txn_id):
                raise TransactionError("mark exploded")

        node = world.add_node("d")
        obj = ExplodingResource("d_res", node.store, node.locks)
        node.listener.publish_object(obj, user_id="d", service="res")
        obj.add("slot1")
        a = trio["a"]
        with pytest.raises(TransactionError):
            a.coordinator.execute(part("a"), [part("d")], AND)
        # The depth guard unwound and the epilogue ran: no stuck busy
        # flag, no leaked locks, a closed (aborted) intent record.
        assert not a.coordinator.busy
        assert a.locks.locked_count() == 0
        txn = f"txn-{a.engine.node_id}-{a.coordinator._txn_counter}"
        assert a.coordinator.intents.in_flight() == []
        assert a.coordinator.intents.status(txn) == "abort"


class TestAbortNeedsNoDecideRecord:
    def test_refused_negotiation_logs_begin_end_only(self, trio):
        trio["b"].store.update("resources", None, {"status": "busy"})
        a = trio["a"]
        result = a.coordinator.execute(part("a"), [part("b")], AND)
        assert not result.ok
        entry = dict(a.coordinator.intents._txns[result.txn_id])
        assert entry["decision"] is None        # presumed abort: no DECIDE
        assert entry["ended"] == "abort"
