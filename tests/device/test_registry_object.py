"""Tests for the deviceware layer: method registry and device objects."""

import pytest

from repro.datastore.schema import ColumnType, schema
from repro.datastore.store import RelationalStore
from repro.device.object import SyDDeviceObject, TableDeviceObject, exported
from repro.device.registry import MethodRegistry
from repro.util.errors import DuplicateRegistrationError, UnknownServiceError


class Echo(SyDDeviceObject):
    @exported
    def ping(self, x=1):
        return {"pong": x}

    def hidden(self):
        return "not exported"


class TestMethodRegistry:
    def test_register_and_lookup(self):
        reg = MethodRegistry()
        reg.register("obj", "m", lambda: 42)
        assert reg.lookup("obj", "m")() == 42
        assert reg.has("obj", "m")

    def test_duplicate_rejected(self):
        reg = MethodRegistry()
        reg.register("obj", "m", lambda: 1)
        with pytest.raises(DuplicateRegistrationError):
            reg.register("obj", "m", lambda: 2)

    def test_unknown_lookup(self):
        reg = MethodRegistry()
        with pytest.raises(UnknownServiceError):
            reg.lookup("obj", "m")
        assert not reg.has("obj", "m")

    def test_unregister_single_method(self):
        reg = MethodRegistry()
        reg.register("obj", "a", lambda: 1)
        reg.register("obj", "b", lambda: 2)
        assert reg.unregister("obj", "a") == 1
        assert reg.unregister("obj", "a") == 0
        assert reg.has("obj", "b")

    def test_unregister_whole_object(self):
        reg = MethodRegistry()
        reg.register("obj", "a", lambda: 1)
        reg.register("obj", "b", lambda: 2)
        reg.register("other", "a", lambda: 3)
        assert reg.unregister("obj") == 2
        assert reg.objects() == ["other"]

    def test_services_and_objects_listing(self):
        reg = MethodRegistry()
        reg.register("b", "y", lambda: 1)
        reg.register("a", "x", lambda: 1)
        assert reg.services() == [("a", "x"), ("b", "y")]
        assert reg.objects() == ["a", "b"]


class TestSyDDeviceObject:
    def test_exported_methods_discovered(self):
        obj = Echo("e")
        methods = obj.exported_methods()
        assert set(methods) == {"ping"}

    def test_publish_registers_exports_only(self):
        obj = Echo("e")
        reg = MethodRegistry()
        names = obj.publish(reg)
        assert names == ["ping"]
        assert reg.has("e", "ping")
        assert not reg.has("e", "hidden")

    def test_unpublish(self):
        obj = Echo("e")
        reg = MethodRegistry()
        obj.publish(reg)
        obj.unpublish(reg)
        assert not reg.has("e", "ping")

    def test_local_invoke(self):
        obj = Echo("e")
        assert obj.invoke("ping", 9) == {"pong": 9}
        with pytest.raises(UnknownServiceError):
            obj.invoke("hidden")

    def test_store_may_be_none(self):
        assert Echo("e").store is None


class TestTableDeviceObject:
    @pytest.fixture
    def table_obj(self):
        store = RelationalStore("s")
        store.create_table("items", schema("id", id=ColumnType.INT, v=ColumnType.STR))
        return TableDeviceObject("items_obj", store, "items")

    def test_crud_via_exports(self, table_obj):
        table_obj.put_row({"id": 1, "v": "a"})
        table_obj.put_row({"id": 2, "v": "b"})
        assert table_obj.get_row(1)["v"] == "a"
        assert table_obj.count_rows() == 2
        assert [r["id"] for r in table_obj.list_rows()] == [1, 2]
        assert table_obj.list_rows(limit=1) == [{"id": 1, "v": "a"}]
        assert table_obj.remove_row(1) == 1
        assert table_obj.get_row(1) is None

    def test_remotely_invocable(self, world, table_obj):
        node = world.add_node("host")
        node.listener.publish_object(table_obj, user_id="host", service="items")
        caller = world.add_node("caller")
        caller.engine.execute("host", "items", "put_row", {"id": 7, "v": "x"})
        assert caller.engine.execute("host", "items", "count_rows") == 1
