"""Tests for the generic negotiable resource object."""

import pytest

from repro.datastore.store import RelationalStore
from repro.device.resource import ResourceObject
from repro.util.errors import LockNotHeldError


@pytest.fixture
def res():
    return ResourceObject("r", RelationalStore("s"))


class TestManagement:
    def test_add_and_read(self, res):
        res.add("k", value={"x": 1})
        row = res.read("k")
        assert row["status"] == "free"
        assert row["value"] == {"x": 1}

    def test_read_missing(self, res):
        assert res.read("nope") is None

    def test_set_status(self, res):
        res.add("k")
        assert res.set_status("k", "busy") == 1
        assert res.read("k")["status"] == "busy"

    def test_is_available(self, res):
        res.add("k")
        assert res.is_available("k")
        res.set_status("k", "busy")
        assert not res.is_available("k")
        assert not res.is_available("missing")

    def test_locked_resource_not_available(self, res):
        res.add("k")
        res.mark("k", "t1")
        assert not res.is_available("k")


class TestNegotiationVerbs:
    def test_mark_change_unmark_cycle(self, res):
        res.add("k")
        assert res.mark("k", "t1")
        row = res.change("k", "t1", {"status": "reserved"})
        assert row["status"] == "reserved"
        assert row["holder"] == "t1"
        assert res.unmark("k", "t1")

    def test_mark_busy_refused(self, res):
        res.add("k", status="busy")
        assert not res.mark("k", "t1")

    def test_mark_missing_refused(self, res):
        assert not res.mark("nope", "t1")

    def test_mark_locked_by_other_refused(self, res):
        res.add("k")
        res.mark("k", "t1")
        assert not res.mark("k", "t2")

    def test_change_without_lock_raises(self, res):
        res.add("k")
        with pytest.raises(LockNotHeldError):
            res.change("k", "t1")

    def test_default_change_reserves(self, res):
        res.add("k")
        res.mark("k", "t1")
        assert res.change("k", "t1")["status"] == "reserved"

    def test_unmark_foreign_lock_false(self, res):
        res.add("k")
        res.mark("k", "t1")
        assert not res.unmark("k", "t2")
        assert res.locks.holder("k") == "t1"


class TestNotifications:
    def test_on_peer_change_records(self, res):
        assert res.on_peer_change("k", {"status": "busy"}) == 1
        assert res.on_peer_change("k2", None) == 2
        assert res.notifications[0] == ("k", {"status": "busy"})
