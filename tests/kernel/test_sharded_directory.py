"""Sharded-vs-single-node directory equivalence suite.

Every directory verb, run against an N=1 world and an N=4/R=2 world,
must yield identical results and identical error types — sharding is an
implementation detail behind the ``DirectoryClient`` interface. The
final test runs the chaos classic profile at seed 7 under both
configurations and compares invariant outcomes.
"""

import pytest

from repro.chaos.campaign import ChaosCampaign, ChaosConfig
from repro.kernel.sharding import ShardedDirectoryClient
from repro.util.errors import (
    DuplicateRegistrationError,
    UnknownGroupError,
    UnknownServiceError,
    UnknownUserError,
)
from repro.world import SyDWorld

USERS = ["alice", "bob", "carol", "dave", "erin", "fred"]


def _worlds():
    single = SyDWorld(seed=11)
    sharded = SyDWorld(seed=11, directory_shards=4, directory_replicas=2)
    for world in (single, sharded):
        for user in USERS:
            world.add_node(user)
    return single, sharded


def _clients(single, sharded):
    return single.node("alice").directory, sharded.node("alice").directory


def _both(single, sharded, fn):
    """Run ``fn`` against both worlds' clients; return both outcomes as
    (value, error_type) pairs and assert they match."""
    outcomes = []
    for world in (single, sharded):
        client = world.node("alice").directory
        try:
            outcomes.append((fn(client), None))
        except Exception as exc:  # noqa: BLE001 — captured for comparison
            outcomes.append((None, type(exc)))
    assert outcomes[0] == outcomes[1], outcomes
    return outcomes[0]


def test_sharded_world_uses_sharded_client():
    _single, sharded = _worlds()
    assert isinstance(sharded.node("alice").directory, ShardedDirectoryClient)
    assert len(sharded.directory_topology.shards) == 4
    assert sharded.directory_topology.ring.replicas == 2


def test_lookup_and_list_verbs_agree():
    single, sharded = _worlds()
    value, error = _both(single, sharded, lambda d: d.lookup_user("bob"))
    assert error is None and value["node_id"] == "bob-device"
    _both(single, sharded, lambda d: sorted(d.list_users()))
    _both(single, sharded, lambda d: d.lookup_user("ghost"))
    # Batched lookups: same records, same per-entry error types.
    def batched(d):
        return [
            (record, type(err) if err else None)
            for record, err in d.lookup_users_many(["alice", "ghost", "carol"])
        ]

    _both(single, sharded, batched)


def test_mutation_verbs_agree():
    single, sharded = _worlds()
    _both(single, sharded, lambda d: d.set_proxy("bob", "carol-device"))
    value, _ = _both(single, sharded, lambda d: d.lookup_user("bob"))
    assert value["proxy_node"] == "carol-device"
    _both(single, sharded, lambda d: d.set_online("bob", False))
    _both(single, sharded, lambda d: d.set_proxy("ghost", None))  # UnknownUserError
    _both(single, sharded, lambda d: d.publish_user("bob", "elsewhere"))  # dup
    _both(single, sharded, lambda d: d.unpublish_user("fred"))
    _both(single, sharded, lambda d: d.lookup_user("fred"))  # now unknown
    _both(single, sharded, lambda d: d.unpublish_user("fred"))  # unknown again


def test_service_verbs_agree():
    single, sharded = _worlds()
    _both(single, sharded, lambda d: d.register_service("bob", "cal", "calendar", ["query"]))
    value, _ = _both(single, sharded, lambda d: d.lookup_service("bob", "cal"))
    assert value["object_name"] == "calendar"
    _both(
        single,
        sharded,
        lambda d: sorted(r["service_key"] for r in d.services_of("bob")),
    )
    _both(single, sharded, lambda d: d.lookup_service("bob", "nope"))  # UnknownService
    _both(single, sharded, lambda d: d.register_service("ghost", "cal", "x", []))
    _both(single, sharded, lambda d: d.register_service("bob", "cal", "x", []))  # dup
    _both(single, sharded, lambda d: d.unregister_service("bob", "cal"))
    _both(single, sharded, lambda d: d.unregister_service("bob", "cal"))  # False now
    # Services batch path.
    _both(single, sharded, lambda d: d.register_service("carol", "cal", "calendar", ["query"]))
    def batched(d):
        return [
            (record["object_name"] if record else None, type(err) if err else None)
            for record, err in d.lookup_services_many([("carol", "cal"), ("bob", "cal")])
        ]

    _both(single, sharded, batched)


def test_group_verbs_agree():
    single, sharded = _worlds()
    _both(single, sharded, lambda d: d.form_group("team", "alice", ["alice", "bob"]))
    _both(single, sharded, lambda d: d.group_members("team"))
    _both(single, sharded, lambda d: d.form_group("team", "alice", ["alice"]))  # dup
    _both(single, sharded, lambda d: d.form_group("bad", "alice", ["alice", "ghost"]))
    _both(single, sharded, lambda d: d.add_member("team", "carol"))
    _both(single, sharded, lambda d: d.add_member("team", "carol"))  # idempotent
    _both(single, sharded, lambda d: d.add_member("team", "ghost"))  # UnknownUser
    _both(single, sharded, lambda d: d.add_member("nope", "alice"))  # UnknownGroup
    _both(single, sharded, lambda d: d.group_members("team"))
    _both(single, sharded, lambda d: d.remove_member("team", "bob"))
    _both(single, sharded, lambda d: d.group_members("team"))
    _both(single, sharded, lambda d: sorted(d.list_groups()))
    _both(single, sharded, lambda d: d.disband_group("team"))
    _both(single, sharded, lambda d: d.group_members("team"))  # UnknownGroup
    _both(single, sharded, lambda d: d.disband_group("team"))  # UnknownGroup


def test_error_types_are_the_exact_exceptions():
    _single, sharded = _worlds()
    directory = sharded.node("alice").directory
    with pytest.raises(UnknownUserError):
        directory.lookup_user("ghost")
    with pytest.raises(DuplicateRegistrationError):
        directory.publish_user("bob", "x")
    with pytest.raises(UnknownServiceError):
        directory.lookup_service("bob", "nope")
    with pytest.raises(UnknownGroupError):
        directory.group_members("nope")


def test_single_shard_world_keeps_plain_wiring():
    """N=1 must stay on today's code path, not a one-shard ring."""
    world = SyDWorld(seed=3, directory_shards=1, directory_replicas=1)
    world.add_node("alice")
    assert world.directory_topology is None
    assert world.directory_listener is not None
    assert not isinstance(world.node("alice").directory, ShardedDirectoryClient)
    assert world.directory_shard_names() == []
    assert world.directory_replays() == 0


def test_chaos_classic_seed7_invariant_outcomes_match():
    """The classic chaos profile at seed 7 produces identical invariant
    outcomes (all clean) whether the directory is one node or 4x2."""
    outcomes = []
    for shards, replicas in ((1, 1), (4, 2)):
        config = ChaosConfig(
            seed=7,
            episodes=2,
            profile="classic",
            shrink=False,
            directory_shards=shards,
            directory_replicas=replicas,
        )
        result = ChaosCampaign(config).run()
        outcomes.append(
            [sorted(str(v) for v in episode.violations) for episode in result.episodes]
        )
    assert outcomes[0] == outcomes[1]
    assert outcomes[0] == [[], []]  # and both are clean


def test_per_shard_cache_flush_regression():
    """A mutation on shard A leaves shard B's cached entries live.

    The pre-sharding DirectoryCache flushed *everything* on any epoch
    bump; per-shard buckets keep unrelated entries warm — measured here
    by message count: the re-lookup of the untouched user costs zero
    traffic, the mutated user's re-lookup refetches.
    """
    world = SyDWorld(seed=11, directory_shards=4, directory_replicas=2, directory_cache=True)
    for user in USERS:
        world.add_node(user)
    topology = world.directory_topology
    observer = world.node("erin").directory
    # Two users whose keys live on different primary shards.
    by_shard = {}
    for user in USERS:
        by_shard.setdefault(topology.primary_shard_for(("user", user)), user)
    (shard_a, user_a), (shard_b, user_b) = sorted(by_shard.items())[:2]
    observer.lookup_user(user_a)
    observer.lookup_user(user_b)
    # Mutate user_a (bumps shard A's epoch at every owner of user_a, but
    # shard B's epoch only if it co-owns user_a — pick non-co-owned pair).
    world.node(user_a).directory.set_proxy(user_a, "ghost-proxy")
    assert topology.epoch_of(shard_a) > 0
    before = world.stats.messages
    cached = observer.lookup_user(user_b)
    if shard_b not in topology.user_owners(user_a):
        assert world.stats.messages == before, "shard B's cache bucket was flushed"
    assert cached["user_id"] == user_b
    # The mutated shard's bucket did flush: user_a refetches and sees the
    # new proxy.
    assert observer.lookup_user(user_a)["proxy_node"] == "ghost-proxy"
    assert world.stats.messages > before


def test_per_shard_cache_unit_level():
    """DirectoryCache with shard_of flushes exactly one bucket."""
    from repro.kernel.directory import _MISS, DirectoryCache

    epochs = {"a": 0, "b": 0}
    cache = DirectoryCache(lambda shard: epochs[shard], shard_of=lambda key: key[1][0])
    cache.put(("user", "apple"), {"user_id": "apple"})
    cache.put(("user", "banana"), {"user_id": "banana"})
    assert len(cache) == 2
    epochs["a"] += 1  # mutation on shard a
    assert cache.get(("user", "banana")) == {"user_id": "banana"}  # still live
    assert cache.get(("user", "apple")) is _MISS  # flushed
    assert cache.flushes == 1
    assert cache.filled_epochs() == {"a": 1, "b": 0}
