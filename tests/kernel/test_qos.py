"""Tests for the QoS engine wrapper (deadlines + retries)."""

import pytest

from repro.kernel.qos import DeadlineExceeded, QoSEngine, QoSPolicy
from repro.util.errors import UnreachableError


@pytest.fixture
def qos_setup(trio, world):
    a = trio["a"]
    return world, a


class TestPolicyValidation:
    def test_bad_retries(self):
        with pytest.raises(ValueError):
            QoSPolicy(retries=-1)

    def test_bad_backoff(self):
        with pytest.raises(ValueError):
            QoSPolicy(backoff=-0.1)

    def test_bad_deadline(self):
        with pytest.raises(ValueError):
            QoSPolicy(deadline=0)


class TestRetries:
    def test_success_first_try(self, qos_setup):
        world, a = qos_setup
        qos = QoSEngine(a.engine, QoSPolicy(retries=2))
        row = qos.execute("b", "res", "read", "slot1")
        assert row["status"] == "free"
        assert qos.retries_used == 0

    def test_retries_exhausted_reraises(self, qos_setup):
        world, a = qos_setup
        world.take_down("b")
        qos = QoSEngine(a.engine, QoSPolicy(retries=2, backoff=0.01))
        with pytest.raises(UnreachableError):
            qos.execute("b", "res", "read", "slot1")
        assert qos.retries_used == 2

    def test_recovery_mid_retries(self, qos_setup):
        """The device comes back between attempts — the call recovers."""
        world, a = qos_setup
        world.take_down("b")
        qos = QoSEngine(a.engine, QoSPolicy(retries=3, backoff=0.01))
        original = a.engine.execute
        calls = {"n": 0}

        def flaky(*args, **kwargs):
            calls["n"] += 1
            if calls["n"] == 2:
                world.bring_up("b")
            return original(*args, **kwargs)

        a.engine.execute = flaky
        row = qos.execute("b", "res", "read", "slot1")
        assert row["status"] == "free"
        assert qos.recovered_calls == 1
        assert qos.retries_used >= 1

    def test_backoff_advances_virtual_time(self, qos_setup):
        world, a = qos_setup
        world.take_down("b")
        qos = QoSEngine(a.engine, QoSPolicy(retries=2, backoff=5.0))
        t0 = world.now
        with pytest.raises(UnreachableError):
            qos.execute("b", "res", "read", "slot1")
        assert world.now - t0 >= 10.0  # two backoffs


class TestDeadlines:
    def test_within_deadline(self, qos_setup):
        world, a = qos_setup
        qos = QoSEngine(a.engine, QoSPolicy(deadline=10.0))
        assert qos.execute("b", "res", "read", "slot1") is not None
        assert qos.deadline_violations == 0

    def test_slow_call_violates_deadline(self, qos_setup):
        world, a = qos_setup
        # One campus round trip takes tens of ms; demand microseconds.
        qos = QoSEngine(a.engine, QoSPolicy(deadline=1e-6))
        with pytest.raises(DeadlineExceeded):
            qos.execute("b", "res", "read", "slot1")
        assert qos.deadline_violations == 1

    def test_deadline_cuts_retry_loop(self, qos_setup):
        world, a = qos_setup
        world.take_down("b")
        qos = QoSEngine(a.engine, QoSPolicy(deadline=7.0, retries=100, backoff=5.0))
        with pytest.raises(DeadlineExceeded):
            qos.execute("b", "res", "read", "slot1")
        # Only ~2 attempts fit in the budget, not 101.
        assert qos.retries_used <= 2

    def test_no_deadline_means_unbounded(self, qos_setup):
        world, a = qos_setup
        qos = QoSEngine(a.engine, QoSPolicy())
        assert qos.execute("b", "res", "read", "slot1") is not None
