"""Property tests for the consistent-hash ring (plain-``random`` style).

The four properties the sharded directory depends on: deterministic
placement for a seed, bounded churn when shards join/leave, distinct
replicas, and bounded load skew over a 5k-key population.
"""

import random
from collections import Counter

import pytest

from repro.kernel.ring import HashRing
from repro.util.errors import ReproError

SEED = 0x5D417  # "SyD dir"
KEYS_SMALL = 800
KEYS_BALANCE = 5000


def _keys(n: int, rng: random.Random) -> list[str]:
    return [f"u:user-{rng.randrange(10**9):09d}-{i}" for i in range(n)]


def test_assignment_is_deterministic_for_a_seed():
    rng = random.Random(SEED)
    keys = _keys(KEYS_SMALL, rng)
    a = HashRing(["s00", "s01", "s02", "s03"], replicas=2, seed=7)
    b = HashRing(["s03", "s01", "s00", "s02"], replicas=2, seed=7)  # order-free
    for key in keys:
        assert a.owners(key) == b.owners(key)
    # A different seed produces a genuinely different placement.
    c = HashRing(["s00", "s01", "s02", "s03"], replicas=2, seed=8)
    assert any(a.primary(k) != c.primary(k) for k in keys)


def test_replicas_are_distinct_and_capped_at_shard_count():
    rng = random.Random(SEED + 1)
    ring = HashRing(["s00", "s01", "s02"], replicas=2, seed=3)
    for key in _keys(KEYS_SMALL, rng):
        owners = ring.owners(key)
        assert len(owners) == 2
        assert len(set(owners)) == 2
    # R larger than the shard count degrades to "every shard owns it".
    greedy = HashRing(["s00", "s01"], replicas=5, seed=3)
    for key in _keys(50, rng):
        assert sorted(greedy.owners(key)) == ["s00", "s01"]


def test_adding_a_shard_only_moves_keys_to_the_new_shard():
    rng = random.Random(SEED + 2)
    keys = _keys(KEYS_SMALL, rng)
    ring = HashRing(["s00", "s01", "s02", "s03"], replicas=2, seed=11)
    before = {k: ring.owners(k) for k in keys}
    grown = ring.with_shard("s04")
    moved = 0
    for key in keys:
        after = grown.owners(key)
        # The primary either stays put or moves to the new shard, never
        # to another pre-existing shard.
        if after[0] != before[key][0]:
            assert after[0] == "s04"
            moved += 1
        # Every owner that is new to this key's set is the added shard.
        for owner in after:
            if owner not in before[key]:
                assert owner == "s04"
    # The new shard actually takes a meaningful share (~1/5 of keys).
    assert 0 < moved < len(keys) // 2


def test_removing_a_shard_only_moves_its_own_keys():
    rng = random.Random(SEED + 3)
    keys = _keys(KEYS_SMALL, rng)
    ring = HashRing(["s00", "s01", "s02", "s03", "s04"], replicas=2, seed=11)
    before = {k: ring.owners(k) for k in keys}
    shrunk = ring.without_shard("s02")
    for key in keys:
        after = shrunk.owners(key)
        if "s02" not in before[key]:
            # Keys the leaving shard never owned are untouched.
            assert after == before[key]
        else:
            assert "s02" not in after
            # Survivors keep their relative order; only replacements for
            # the departed shard are new.
            survivors = [o for o in before[key] if o != "s02"]
            assert after[: len(survivors)] == survivors or set(survivors) <= set(after)


def test_balance_over_5k_keys_stays_under_skew_bound():
    rng = random.Random(SEED + 4)
    ring = HashRing(["s00", "s01", "s02", "s03"], replicas=1, seed=5)
    load = Counter(ring.primary(k) for k in _keys(KEYS_BALANCE, rng))
    assert set(load) == {"s00", "s01", "s02", "s03"}
    skew = max(load.values()) / min(load.values())
    assert skew <= 2.0, f"shard load skew {skew:.2f} exceeds bound: {dict(load)}"


def test_ring_edge_cases():
    empty = HashRing(replicas=2, seed=1)
    with pytest.raises(ReproError):
        empty.owners("u:alice")
    ring = HashRing(["s00"], replicas=2, seed=1)
    assert ring.owners("u:alice") == ["s00"]
    with pytest.raises(ReproError):
        ring.add_shard("s00")
    with pytest.raises(ReproError):
        ring.remove_shard("s99")
    with pytest.raises(ReproError):
        HashRing(replicas=0)
