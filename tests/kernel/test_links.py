"""Tests for SyDLinks — the six operations of paper §4.2."""

import pytest

from repro.kernel.linktypes import LinkRef, LinkSubtype, LinkType
from repro.txn.coordinator import AND
from repro.util.errors import UnknownLinkError

REF_B = LinkRef("b", "slot1", "res", on_change="on_peer_change")


def sub_link(node, refs=None, **kw):
    return node.links.create_link(
        LinkType.SUBSCRIPTION, refs or [LinkRef("b", "slot1", "res", on_change=None)], **kw
    )


def neg_link(node, refs=None, **kw):
    kw.setdefault("constraint", AND)
    return node.links.create_link(
        LinkType.NEGOTIATION, refs or [LinkRef("b", "slot1", "res")], **kw
    )


class TestOp1LinkDatabase:
    def test_tables_created(self, trio):
        store = trio["a"].store
        for t in ["SyD_Links", "SyD_WaitingLink", "SyD_LinkMethod"]:
            assert store.has_table(t)

    def test_idempotent_on_existing_tables(self, trio, world):
        from repro.kernel.links import SyDLinks

        node = trio["a"]
        again = SyDLinks("a", node.store, node.engine, world.clock)
        assert again.all_links() == node.links.all_links()


class TestOp2Creation:
    def test_create_and_get(self, trio):
        link = neg_link(trio["a"], priority=3, context={"meeting_id": "m1"})
        got = trio["a"].links.get_link(link.link_id)
        assert got == link
        assert got.priority == 3

    def test_created_event_published(self, trio):
        seen = []
        trio["a"].events.on_local("link.created", lambda t, p: seen.append(p["link"]))
        link = neg_link(trio["a"])
        assert seen == [link]

    def test_links_by_context_and_entity(self, trio):
        a = trio["a"]
        l1 = neg_link(a, source_entity="slotX", context={"meeting_id": "m1"})
        neg_link(a, source_entity="slotY", context={"meeting_id": "m2"})
        assert [ln.link_id for ln in a.links.links_by_context("meeting_id", "m1")] == [l1.link_id]
        assert [ln.link_id for ln in a.links.links_for_entity("slotX")] == [l1.link_id]

    def test_unknown_link(self, trio):
        with pytest.raises(UnknownLinkError):
            trio["a"].links.get_link("nope")

    def test_ttl_sets_expiry(self, trio, world):
        link = neg_link(trio["a"], ttl=50.0)
        assert link.expires_at == pytest.approx(world.now + 50.0)


class TestOp3Promotion:
    def test_waiting_link_promoted_on_delete(self, trio):
        a = trio["a"]
        blocking = neg_link(a)
        waiting = neg_link(
            a, subtype=LinkSubtype.TENTATIVE, waiting_on=blocking.link_id, priority=1
        )
        assert len(a.links.waiting_entries(blocking.link_id)) == 1

        promoted = a.links.delete_link(blocking.link_id)
        assert promoted == [waiting.link_id]
        got = a.links.get_link(waiting.link_id)
        assert got.subtype is LinkSubtype.PERMANENT
        assert got.waiting_on is None
        assert a.links.waiting_entries() == []

    def test_highest_priority_waiter_wins(self, trio):
        a = trio["a"]
        blocking = neg_link(a)
        low = neg_link(a, subtype=LinkSubtype.TENTATIVE, waiting_on=blocking.link_id, priority=1)
        high = neg_link(a, subtype=LinkSubtype.TENTATIVE, waiting_on=blocking.link_id, priority=5)
        promoted = a.links.delete_link(blocking.link_id)
        assert promoted == [high.link_id]
        assert a.links.get_link(high.link_id).subtype is LinkSubtype.PERMANENT
        # The low-priority waiter stays tentative (its entry was not for the top priority).
        assert a.links.get_link(low.link_id).subtype is LinkSubtype.TENTATIVE

    def test_group_promotion(self, trio):
        a = trio["a"]
        blocking = neg_link(a)
        g1 = neg_link(
            a,
            subtype=LinkSubtype.TENTATIVE,
            waiting_on=blocking.link_id,
            priority=5,
            waiting_group="grp",
        )
        g2 = neg_link(
            a,
            subtype=LinkSubtype.TENTATIVE,
            waiting_on=blocking.link_id,
            priority=2,
            waiting_group="grp",
        )
        promoted = set(a.links.delete_link(blocking.link_id))
        # Whole group promoted together because its top member won.
        assert promoted == {g1.link_id, g2.link_id}

    def test_remote_waiter_promoted_via_engine(self, trio):
        a, b = trio["a"], trio["b"]
        blocking = neg_link(a)
        remote_wait = b.links.create_link(
            LinkType.NEGOTIATION,
            [LinkRef("a", "slot1", "res")],
            constraint=AND,
            subtype=LinkSubtype.TENTATIVE,
        )
        a.links.register_waiting(blocking.link_id, "b", remote_wait.link_id, priority=1)
        a.links.delete_link(blocking.link_id)
        assert b.links.get_link(remote_wait.link_id).subtype is LinkSubtype.PERMANENT
        assert b.links.promoted == 1

    def test_promoted_event_published(self, trio):
        a = trio["a"]
        seen = []
        a.events.on_local("link.promoted", lambda t, p: seen.append(p["link"].link_id))
        blocking = neg_link(a)
        waiting = neg_link(a, subtype=LinkSubtype.TENTATIVE, waiting_on=blocking.link_id)
        a.links.delete_link(blocking.link_id)
        assert seen == [waiting.link_id]

    def test_down_waiter_skipped(self, trio, world):
        a = trio["a"]
        blocking = neg_link(a)
        remote_wait = trio["b"].links.create_link(
            LinkType.NEGOTIATION,
            [LinkRef("a", "slot1", "res")],
            constraint=AND,
            subtype=LinkSubtype.TENTATIVE,
        )
        a.links.register_waiting(blocking.link_id, "b", remote_wait.link_id, priority=1)
        world.take_down("b")
        promoted = a.links.delete_link(blocking.link_id)
        assert promoted == []  # waiter unreachable, entry dropped


class TestOp4Deletion:
    def test_delete_removes_row(self, trio):
        a = trio["a"]
        link = neg_link(a)
        a.links.delete_link(link.link_id)
        assert not a.links.has_link(link.link_id)
        assert a.links.deleted == 1

    def test_cascade_deletes_associated_links_at_peers(self, trio):
        a, b, c = trio["a"], trio["b"], trio["c"]
        ctx = {"cascade_id": "meeting-7"}
        la = a.links.create_link(
            LinkType.NEGOTIATION,
            [LinkRef("b", "slot1", "res"), LinkRef("c", "slot1", "res")],
            constraint=AND,
            context=ctx,
        )
        lb = b.links.create_link(
            LinkType.NEGOTIATION, [LinkRef("a", "slot1", "res")], constraint=AND, context=ctx
        )
        lc = c.links.create_link(
            LinkType.NEGOTIATION, [LinkRef("a", "slot1", "res")], constraint=AND, context=ctx
        )
        a.links.delete_link(la.link_id)
        assert not b.links.has_link(lb.link_id)
        assert not c.links.has_link(lc.link_id)
        assert b.links.cascades_received == 1

    def test_cascade_terminates_on_cycles(self, trio):
        a, b = trio["a"], trio["b"]
        ctx = {"cascade_id": "cyc"}
        la = a.links.create_link(
            LinkType.NEGOTIATION, [LinkRef("b", "slot1", "res")], constraint=AND, context=ctx
        )
        b.links.create_link(
            LinkType.NEGOTIATION, [LinkRef("a", "slot1", "res")], constraint=AND, context=ctx
        )
        a.links.delete_link(la.link_id)  # must not recurse forever
        assert a.links.links_by_context("cascade_id", "cyc") == []
        assert b.links.links_by_context("cascade_id", "cyc") == []

    def test_cascade_skips_down_peer(self, trio, world):
        a, b = trio["a"], trio["b"]
        ctx = {"cascade_id": "x"}
        la = a.links.create_link(
            LinkType.NEGOTIATION, [LinkRef("b", "slot1", "res")], constraint=AND, context=ctx
        )
        lb = b.links.create_link(
            LinkType.NEGOTIATION, [LinkRef("a", "slot1", "res")], constraint=AND, context=ctx
        )
        world.take_down("b")
        a.links.delete_link(la.link_id)
        assert not a.links.has_link(la.link_id)
        world.bring_up("b")
        assert b.links.has_link(lb.link_id)  # cleanup deferred to expiry

    def test_delete_without_cascade(self, trio):
        a, b = trio["a"], trio["b"]
        ctx = {"cascade_id": "nc"}
        la = a.links.create_link(
            LinkType.NEGOTIATION, [LinkRef("b", "slot1", "res")], constraint=AND, context=ctx
        )
        lb = b.links.create_link(
            LinkType.NEGOTIATION, [LinkRef("a", "slot1", "res")], constraint=AND, context=ctx
        )
        a.links.delete_link(la.link_id, cascade=False)
        assert b.links.has_link(lb.link_id)


class TestOp5MethodInvocation:
    def test_after_method_fires_mapped_destination(self, trio):
        a, b = trio["a"], trio["b"]
        a.links.add_link_method("a_res", "change", "b", "res", "on_peer_change")
        # Emulate the listener hook after a local 'change' execution.
        fired = a.links.after_method("a_res", "change", ["slot1", "t"], {}, None)
        assert fired == 1
        assert b.res_obj.notifications[0][0]["source_method"] == "change"

    def test_unmapped_method_fires_nothing(self, trio):
        a = trio["a"]
        assert a.links.after_method("a_res", "read", [], {}, None) == 0

    def test_middleware_trigger_mode_end_to_end(self, trio):
        """enable_middleware_triggers wires after_method into the listener."""
        a, b = trio["a"], trio["b"]
        a.enable_middleware_triggers()
        a.links.add_link_method("a_res", "set_status", "b", "res", "on_peer_change")
        # Remote invocation of a's set_status must propagate to b.
        trio["c"].engine.execute("a", "res", "set_status", "slot1", "busy")
        assert len(b.res_obj.notifications) == 1
        assert b.res_obj.notifications[0][0]["args"] == ["slot1", "busy"]

    def test_down_destination_skipped(self, trio, world):
        a = trio["a"]
        a.links.add_link_method("a_res", "change", "b", "res", "set_status")
        world.take_down("b")
        assert a.links.after_method("a_res", "change", [], {}, None) == 0

    def test_broken_mapping_does_not_fail_source_invocation(self, trio):
        """Regression: a SyD_LinkMethod entry naming a method the
        destination never registered must not surface an error to the
        *source* caller (the hook runs inside that invocation)."""
        a, c = trio["a"], trio["c"]
        a.enable_middleware_triggers()
        a.links.add_link_method("a_res", "set_status", "b", "res", "no_such_method")
        # The triggering call itself must still succeed.
        assert c.engine.execute("a", "res", "set_status", "slot1", "busy") == 1


class TestOp6Expiry:
    def test_expired_links_deleted_by_sweep(self, trio, world):
        a = trio["a"]
        neg_link(a, ttl=10.0)
        keeper = neg_link(a, ttl=1000.0)
        a.start_expiry_sweep(interval=5.0)
        world.run_for(20.0)
        assert [ln.link_id for ln in a.links.all_links()] == [keeper.link_id]
        assert a.links.expired == 1

    def test_expire_links_direct_call(self, trio):
        a = trio["a"]
        doomed = neg_link(a, ttl=0.0)
        assert a.links.expire_links(a.links.clock.now() + 0.1) == [doomed.link_id]

    def test_expiry_cascades(self, trio, world):
        a, b = trio["a"], trio["b"]
        ctx = {"cascade_id": "exp"}
        neg_link(a, ttl=5.0, context=ctx)
        lb = b.links.create_link(
            LinkType.NEGOTIATION, [LinkRef("a", "slot1", "res")], constraint=AND, context=ctx
        )
        a.links.expire_links(world.now + 10.0)
        assert not b.links.has_link(lb.link_id)


class TestSubscriptionFiring:
    def test_subscription_notifies_peers(self, trio):
        a, b = trio["a"], trio["b"]
        a.links.create_link(
            LinkType.SUBSCRIPTION,
            [LinkRef("b", "slot1", "res", on_change="on_peer_change")],
            source_entity="slot1",
        )
        delivered = a.links.fire_subscriptions("slot1", {"status": "busy"})
        assert delivered == 1
        assert b.res_obj.notifications == [("slot1", {"status": "busy"})]

    def test_tentative_subscription_does_not_fire(self, trio):
        a = trio["a"]
        blocking = neg_link(a)
        a.links.create_link(
            LinkType.SUBSCRIPTION,
            [LinkRef("b", "slot1", "res", on_change="on_peer_change")],
            source_entity="slot1",
            subtype=LinkSubtype.TENTATIVE,
            waiting_on=blocking.link_id,
        )
        assert a.links.fire_subscriptions("slot1", {}) == 0

    def test_negotiation_links_not_fired_as_subscriptions(self, trio):
        a = trio["a"]
        neg_link(a, source_entity="slot1")
        assert a.links.fire_subscriptions("slot1", {}) == 0

    def test_down_subscriber_skipped(self, trio, world):
        a = trio["a"]
        a.links.create_link(
            LinkType.SUBSCRIPTION,
            [LinkRef("b", "slot1", "res", on_change="on_peer_change")],
            source_entity="slot1",
        )
        world.take_down("b")
        assert a.links.fire_subscriptions("slot1", {}) == 0


class TestRemoteFacade:
    def test_create_link_row_remotely(self, trio):
        a, b = trio["a"], trio["b"]
        link_id = a.engine.execute(
            "b",
            "_syd_links",
            "create_link_row",
            {
                "ltype": "negotiation",
                "refs": [{"user": "a", "entity": "slot1", "service": "res"}],
                "constraint": "and",
                "priority": 4,
                "context": {"cascade_id": "m1"},
            },
        )
        link = b.links.get_link(link_id)
        assert link.owner == "b"
        assert link.priority == 4

    def test_get_link_row_and_list(self, trio):
        a, b = trio["a"], trio["b"]
        link = b.links.create_link(
            LinkType.NEGOTIATION, [LinkRef("a", "slot1", "res")], constraint=AND
        )
        row = a.engine.execute("b", "_syd_links", "get_link_row", link.link_id)
        assert row["link_id"] == link.link_id
        rows = a.engine.execute("b", "_syd_links", "list_link_rows")
        assert len(rows) == 1

    def test_delete_link_remote(self, trio):
        a, b = trio["a"], trio["b"]
        link = b.links.create_link(
            LinkType.NEGOTIATION, [LinkRef("a", "slot1", "res")], constraint=AND
        )
        assert a.engine.execute("b", "_syd_links", "delete_link_remote", link.link_id)
        assert not b.links.has_link(link.link_id)
        assert not a.engine.execute("b", "_syd_links", "delete_link_remote", link.link_id)

    def test_register_waiting_remotely(self, trio):
        a, b = trio["a"], trio["b"]
        blocking = b.links.create_link(
            LinkType.NEGOTIATION, [LinkRef("a", "slot1", "res")], constraint=AND
        )
        mine = a.links.create_link(
            LinkType.NEGOTIATION,
            [LinkRef("b", "slot1", "res")],
            constraint=AND,
            subtype=LinkSubtype.TENTATIVE,
        )
        a.engine.execute(
            "b", "_syd_links", "register_waiting", blocking.link_id, "a", mine.link_id, 2
        )
        b.links.delete_link(blocking.link_id)
        assert a.links.get_link(mine.link_id).subtype is LinkSubtype.PERMANENT
