"""Reproduction of Figure 4: the UML activity diagram of negotiation-or.

The paper's Figure 4 shows "execution of SyD links for negotiation-or
for three SyD objects A, B, and C where A is the activating object". The
diagram's activity order is:

    A: mark + lock ->
    B: mark (lock if possible), C: mark (lock if possible) ->
    [>= 1 lock obtained] ->
    A: change -> changed targets change ->
    unlock targets -> unlock A

Since the figure is a diagram, the reproduction is a machine-checked
trace: we run negotiation-or over three device objects named exactly A,
B, C and assert the step order in the coordinator's tracer.
"""

import pytest

from repro import SyDWorld
from repro.device.resource import ResourceObject
from repro.txn.coordinator import OR, Participant


@pytest.fixture
def abc_world():
    world = SyDWorld(seed=3)
    nodes = {}
    for user in ["A", "B", "C"]:
        node = world.add_node(user)
        obj = ResourceObject(f"{user}_obj", node.store, node.locks)
        node.listener.publish_object(obj, user_id=user, service="res")
        obj.add("slot")
        nodes[user] = node
    return world, nodes


def run_or(world, nodes):
    coord = nodes["A"].coordinator
    return coord.execute(
        Participant("A", "slot", "res"),
        [Participant("B", "slot", "res"), Participant("C", "slot", "res")],
        OR,
    )


def test_figure4_happy_path_step_order(abc_world):
    world, nodes = abc_world
    result = run_or(world, nodes)
    assert result.ok

    tracer = nodes["A"].tracer
    # The full Figure-4 activity sequence, in order:
    tracer.assert_order(
        [
            ("A", "mark"),
            ("A", "lock"),
            ("B", "mark"),
            ("B", "lock"),
            ("C", "mark"),
            ("C", "lock"),
            ("A", "change"),
            ("B", "change"),
            ("C", "change"),
            ("B", "unlock"),
            ("C", "unlock"),
            ("A", "unlock"),
        ]
    )


def test_figure4_partial_availability(abc_world):
    """B cannot change; the OR succeeds through C alone."""
    world, nodes = abc_world
    nodes["B"].store.update("resources", None, {"status": "busy"})
    result = run_or(world, nodes)
    assert result.ok
    tracer = nodes["A"].tracer
    tracer.assert_order(
        [
            ("A", "mark"),
            ("A", "lock"),
            ("B", "mark"),
            ("B", "refuse"),
            ("C", "mark"),
            ("C", "lock"),
            ("A", "change"),
            ("C", "change"),
            ("C", "unlock"),
            ("A", "unlock"),
        ]
    )
    # B must never change or unlock.
    assert ("B", "change") not in tracer.steps()
    assert ("B", "lock") not in tracer.steps()


def test_figure4_no_availability_aborts(abc_world):
    """Neither B nor C can change: A aborts, no change steps at all."""
    world, nodes = abc_world
    for u in "BC":
        nodes[u].store.update("resources", None, {"status": "busy"})
    result = run_or(world, nodes)
    assert not result.ok
    steps = nodes["A"].tracer.steps()
    assert ("A", "change") not in steps
    assert ("A", "abort") in steps
    # A still unlocks itself on the abort path.
    nodes["A"].tracer.assert_order([("A", "mark"), ("A", "lock"), ("A", "unlock")])


def test_figure4_changes_happen_before_unlocks(abc_world):
    """The diagram orders all changes before any unlock."""
    world, nodes = abc_world
    run_or(world, nodes)
    steps = nodes["A"].tracer.steps()
    last_change = max(i for i, s in enumerate(steps) if s[1] == "change")
    first_unlock = min(i for i, s in enumerate(steps) if s[1] == "unlock")
    assert last_change < first_unlock
