"""Tests for dynamic group maintenance (GroupManager)."""

import pytest

from repro.kernel.groups import GroupManager
from repro.util.errors import UnknownGroupError


@pytest.fixture
def managers(trio, world):
    return {u: GroupManager(node) for u, node in trio.items()}


class TestFormationAndMembership:
    def test_form_and_members(self, managers):
        managers["a"].form("team", ["a", "b"])
        assert managers["b"].members("team") == ["a", "b"]

    def test_form_dedups(self, managers):
        assert managers["a"].form("team", ["a", "b", "a"]) == ["a", "b"]

    def test_join_and_leave_self(self, managers):
        managers["a"].form("team", ["a", "b"])
        managers["c"].join("team")
        assert managers["a"].members("team") == ["a", "b", "c"]
        managers["c"].leave("team")
        assert managers["a"].members("team") == ["a", "b"]

    def test_disband(self, managers):
        managers["a"].form("team", ["a"])
        managers["a"].disband("team")
        with pytest.raises(UnknownGroupError):
            managers["a"].members("team")


class TestNotifications:
    def test_watchers_hear_joins(self, managers):
        managers["a"].form("team", ["a", "b"])
        managers["a"].watch("team")
        # b joins someone: b's node announces; a subscribed at b's node.
        managers["b"].join("team", "c")
        events = managers["a"].events_seen
        assert any(e["change"] == "joined" and e["user"] == "c" for e in events)

    def test_watch_handler_callback(self, managers):
        seen = []
        managers["a"].form("team", ["a", "b"])
        managers["a"].watch("team", handler=seen.append)
        managers["b"].leave("team")
        assert any(e["change"] == "left" and e["user"] == "b" for e in seen)

    def test_unwatch(self, managers):
        managers["a"].form("team", ["a", "b"])
        managers["a"].watch("team")
        managers["a"].unwatch("team")
        managers["b"].join("team", "c")
        assert managers["a"].events_seen == []

    def test_disband_announced(self, managers):
        managers["a"].form("team", ["a", "b"])
        managers["b"].watch("team")
        managers["a"].disband("team")
        assert any(e["change"] == "disbanded" for e in managers["b"].events_seen)

    def test_down_member_does_not_block_announcement(self, managers, world):
        managers["a"].form("team", ["a", "b", "c"])
        managers["c"].watch("team")
        world.take_down("c")
        managers["a"].join("team", "b")  # idempotent add, still announces
        # No exception; c heard nothing while down.
        assert managers["c"].events_seen == []


class TestBroadcast:
    def test_broadcast_invokes_all_members(self, managers, trio):
        managers["a"].form("team", ["a", "b", "c"])
        result = managers["a"].broadcast("team", "res", "read", "slot1")
        assert result.all_ok
        assert {r.member for r in result.results} == {"a", "b", "c"}
