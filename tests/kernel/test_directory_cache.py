"""Tests for the epoch-validated directory lookup cache."""

import pytest

from repro.kernel.directory import DirectoryCache
from repro.util.errors import UnknownUserError
from repro.world import SyDWorld


def make_world(**kwargs):
    world = SyDWorld(seed=1, **kwargs)
    world.add_node("phil")
    world.add_node("andy", proxy_node=None)
    return world


class TestCacheUnit:
    def test_miss_then_hit(self):
        epoch = [0]
        cache = DirectoryCache(lambda: epoch[0])
        assert cache.get(("user", "phil")) != {"node_id": "n1"}
        assert cache.misses == 1
        cache.put(("user", "phil"), {"node_id": "n1"})
        assert cache.get(("user", "phil")) == {"node_id": "n1"}
        assert cache.hits == 1

    def test_epoch_bump_flushes_everything(self):
        epoch = [0]
        cache = DirectoryCache(lambda: epoch[0])
        cache.put(("user", "phil"), {"node_id": "n1"})
        cache.put(("user", "andy"), {"node_id": "n2"})
        assert len(cache) == 2
        epoch[0] += 1
        cache.get(("user", "phil"))
        assert len(cache) == 0
        assert cache.flushes == 1

    def test_cached_values_are_copies(self):
        cache = DirectoryCache(lambda: 0)
        cache.put(("user", "phil"), {"node_id": "n1"})
        cache.get(("user", "phil"))["node_id"] = "tampered"
        assert cache.get(("user", "phil")) == {"node_id": "n1"}


class TestCachedClient:
    def test_cache_hit_costs_no_messages(self):
        world = make_world(directory_cache=True)
        node = world.node("phil")
        node.directory.lookup_user("andy")
        before = world.stats.snapshot()
        record = node.directory.lookup_user("andy")
        delta = world.stats.snapshot().delta(before)
        assert delta.messages == 0
        assert record["user_id"] == "andy"

    def test_uncached_world_pays_every_time(self):
        world = make_world()
        node = world.node("phil")
        node.directory.lookup_user("andy")
        before = world.stats.snapshot()
        node.directory.lookup_user("andy")
        assert world.stats.snapshot().delta(before).messages == 2

    def test_proxy_reassignment_visible_after_epoch_bump(self):
        world = make_world(directory_cache=True)
        node = world.node("phil")
        assert node.directory.lookup_user("andy").get("proxy_node") is None
        # Another node changes andy's proxy: the service epoch bumps, so
        # phil's next (cached) lookup refetches and sees the new proxy.
        world.node("andy").directory.set_proxy("andy", "proxy-9")
        assert node.directory.lookup_user("andy")["proxy_node"] == "proxy-9"

    def test_unregister_visible_after_epoch_bump(self):
        world = make_world(directory_cache=True)
        node = world.node("phil")
        node.directory.lookup_user("andy")
        world.node("andy").directory.unpublish_user("andy")
        with pytest.raises(UnknownUserError):
            node.directory.lookup_user("andy")

    def test_service_lookup_cached_and_invalidated(self):
        world = make_world(directory_cache=True)
        phil = world.node("phil")
        svc = phil.directory.lookup_service("andy", "_syd_links")
        before = world.stats.snapshot()
        assert phil.directory.lookup_service("andy", "_syd_links") == svc
        assert world.stats.snapshot().delta(before).messages == 0

    def test_batched_lookups_fill_and_use_the_cache(self):
        world = make_world(directory_cache=True)
        world.add_node("carol")
        phil = world.node("phil")
        phil.directory.lookup_users_many(["andy", "carol"])
        before = world.stats.snapshot()
        results = phil.directory.lookup_users_many(["andy", "carol"])
        assert world.stats.snapshot().delta(before).messages == 0
        assert [r[0]["user_id"] for r in results] == ["andy", "carol"]

    def test_enable_directory_cache_covers_future_nodes(self):
        world = make_world()
        world.enable_directory_cache()
        late = world.add_node("late")
        assert late.directory.cache is not None
        late.directory.lookup_user("phil")
        before = world.stats.snapshot()
        late.directory.lookup_user("phil")
        assert world.stats.snapshot().delta(before).messages == 0

    def test_epoch_query_matches_service(self):
        world = make_world(directory_cache=True)
        node = world.node("phil")
        assert node.directory.directory_epoch() == world.directory_service.epoch
