"""Tests for SyDEventHandler (local + global events, monitors)."""

import pytest

from repro.util.errors import NetworkError


class TestLocalEvents:
    def test_local_round_trip(self, world):
        node = world.add_node("a")
        seen = []
        node.events.on_local("cal.*", lambda t, p: seen.append((t, p)))
        n = node.events.raise_local("cal.changed", slot=3)
        assert n == 1
        assert seen == [("cal.changed", {"slot": 3})]

    def test_unsubscribe(self, world):
        node = world.add_node("a")
        seen = []
        unsub = node.events.on_local("x", lambda t, p: seen.append(t))
        unsub()
        node.events.raise_local("x")
        assert seen == []


class TestGlobalEvents:
    def test_remote_subscription_delivers(self, world):
        a = world.add_node("a")
        b = world.add_node("b")
        seen = []
        a.events.on_global("cal.changed", lambda t, p: seen.append((t, p)))
        a.events.subscribe_remote(b.node_id, "cal.changed")
        assert b.events.remote_subscriber_count("cal.changed") == 1

        delivered = b.events.raise_global("cal.changed", slot=5)
        assert delivered == 1
        assert seen == [("global.cal.changed", {"slot": 5})]

    def test_unsubscribe_remote(self, world):
        a = world.add_node("a")
        b = world.add_node("b")
        a.events.subscribe_remote(b.node_id, "t")
        a.events.unsubscribe_remote(b.node_id, "t")
        assert b.events.remote_subscriber_count("t") == 0

    def test_publisher_local_subscribers_also_hear_global(self, world):
        b = world.add_node("b")
        local_seen = []
        b.events.on_local("t", lambda t, p: local_seen.append(t))
        b.events.raise_global("t")
        assert local_seen == ["t"]

    def test_down_subscriber_skipped_not_fatal(self, world):
        a = world.add_node("a")
        b = world.add_node("b")
        c = world.add_node("c")
        seen = []
        a.events.subscribe_remote(b.node_id, "t")
        c.events.on_global("t", lambda t, p: seen.append(t))
        c.events.subscribe_remote(b.node_id, "t")
        world.take_down("a")
        delivered = b.events.raise_global("t")
        assert delivered == 1  # only c
        assert b.events.notifications_failed == 1
        assert seen == ["global.t"]

    def test_multiple_subscribers_ordered_delivery(self, world):
        pub = world.add_node("pub")
        subs = [world.add_node(f"s{i}") for i in range(3)]
        seen = []
        for node in subs:
            node.events.on_global("t", lambda t, p, n=node: seen.append(n.user))
            node.events.subscribe_remote(pub.node_id, "t")
        pub.events.raise_global("t")
        assert seen == ["s0", "s1", "s2"]

    def test_unknown_event_kind_rejected(self, world):
        node = world.add_node("a")
        from repro.net.message import Message

        with pytest.raises(NetworkError):
            node.events.handle_message(Message("m", "x", node.node_id, "event.bogus", {}))


class TestMonitors:
    def test_monitor_every_fires_on_schedule(self, world):
        node = world.add_node("a")
        fired = []
        node.events.monitor_every(10.0, lambda: fired.append(world.now))
        world.run_for(35.0)
        assert len(fired) == 3

    def test_stop_monitors(self, world):
        node = world.add_node("a")
        fired = []
        node.events.monitor_every(10.0, lambda: fired.append(1))
        world.run_for(15.0)
        node.events.stop_monitors()
        world.run_for(50.0)
        assert len(fired) == 1
