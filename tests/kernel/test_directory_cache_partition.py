"""DirectoryCache epoch behaviour across a partition and its heal.

A partitioned node keeps serving (stale) cached records it cannot
validate — and must converge with the directory service once the
partition heals and the next lookup revalidates the epoch.
"""

import pytest

from repro.util.errors import NetworkError
from repro.world import SyDWorld

USERS = ["phil", "andy", "suzy"]


@pytest.fixture
def world():
    world = SyDWorld(seed=17, directory_cache=True)
    for user in USERS:
        world.add_node(user)
    return world


def cut_off(world, user):
    """Partition ``user``'s node away from everyone (directory included)."""
    node_id = world.node(user).node_id
    others = [world.node(u).node_id for u in USERS if u != user]
    others.append(world.directory_node)
    world.transport.faults.partition([node_id], others)


def test_epoch_change_behind_a_partition_converges_after_heal(world):
    phil = world.node("phil")
    phil.directory.lookup_user("andy")  # fill the cache
    filled_epoch = phil.directory.cache._filled_epoch
    assert filled_epoch == world.directory_service.epoch

    cut_off(world, "phil")
    # Behind the partition, andy's binding changes: the service epoch
    # bumps, phil's cache is now stale and cannot revalidate.
    world.node("andy").directory.set_proxy("andy", "proxy-9")
    assert world.directory_service.epoch > filled_epoch

    world.transport.faults.heal_partition()
    record = phil.directory.lookup_user("andy")
    assert record["proxy_node"] == "proxy-9"
    assert phil.directory.cache._filled_epoch == world.directory_service.epoch


def test_partitioned_lookup_of_uncached_user_fails(world):
    phil = world.node("phil")
    cut_off(world, "phil")
    with pytest.raises(NetworkError):
        phil.directory.lookup_user("suzy")
    world.transport.faults.heal_partition()
    assert phil.directory.lookup_user("suzy")["user_id"] == "suzy"


def test_group_formation_behind_partition_invalidates_peer_caches(world):
    phil, andy = world.node("phil"), world.node("andy")
    phil.directory.lookup_user("suzy")
    cut_off(world, "phil")
    andy.directory.form_group("biology", "andy", ["andy", "suzy"])
    world.transport.faults.heal_partition()
    # phil's next lookup revalidates against the bumped epoch and sees
    # the new group through a fresh cache fill.
    assert phil.directory.group_members("biology") == ["andy", "suzy"]
    assert phil.directory.cache._filled_epoch == world.directory_service.epoch
