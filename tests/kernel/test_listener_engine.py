"""Tests for SyDListener dispatch, SyDEngine execution and aggregation."""

import pytest

from repro import SyDWorld
from repro.device.object import SyDDeviceObject, exported
from repro.kernel.aggregate import (
    collect_all,
    count_success,
    first_success,
    intersect_lists,
    merge_lists,
    quorum,
    require_all,
)
from repro.util.errors import (
    AuthenticationError,
    SlotUnavailableError,
    TransactionError,
    UnknownServiceError,
    UnreachableError,
)


class Echo(SyDDeviceObject):
    @exported
    def ping(self, x=None):
        return {"pong": x, "via": self.name}

    @exported
    def fail(self):
        raise SlotUnavailableError("nope")

    @exported
    def free_slots(self):
        return self._slots

    def set_slots(self, slots):
        self._slots = slots


def setup_users(world, names):
    out = {}
    for name in names:
        node = world.add_node(name)
        obj = Echo(f"{name}_echo")
        obj.set_slots([])
        node.listener.publish_object(obj, user_id=name, service="echo")
        out[name] = (node, obj)
    return out


class TestSingleExecution:
    def test_execute_resolves_through_directory(self, world):
        users = setup_users(world, ["a", "b"])
        node_a = users["a"][0]
        assert node_a.engine.execute("b", "echo", "ping", 1) == {
            "pong": 1,
            "via": "b_echo",
        }

    def test_execute_self_call_goes_through_network(self, world):
        users = setup_users(world, ["a"])
        node = users["a"][0]
        before = world.stats.messages
        node.engine.execute("a", "echo", "ping")
        assert world.stats.messages > before

    def test_remote_typed_error_propagates(self, world):
        users = setup_users(world, ["a", "b"])
        with pytest.raises(SlotUnavailableError):
            users["a"][0].engine.execute("b", "echo", "fail")

    def test_unknown_method(self, world):
        users = setup_users(world, ["a", "b"])
        with pytest.raises(UnknownServiceError):
            users["a"][0].engine.execute("b", "echo", "bogus")

    def test_unreachable_without_proxy_raises(self, world):
        users = setup_users(world, ["a", "b"])
        world.take_down("b")
        with pytest.raises(UnreachableError):
            users["a"][0].engine.execute("b", "echo", "ping")

    def test_invocation_counter(self, world):
        users = setup_users(world, ["a", "b"])
        listener_b = users["b"][0].listener
        before = listener_b.invocations
        users["a"][0].engine.execute("b", "echo", "ping")
        assert listener_b.invocations == before + 1


class TestGroupExecution:
    def test_group_by_list(self, world):
        users = setup_users(world, ["a", "b", "c"])
        result = users["a"][0].engine.execute_group(["a", "b", "c"], "echo", "ping", 5)
        assert result.all_ok
        assert result.value_of("b")["pong"] == 5

    def test_group_by_directory_group(self, world):
        users = setup_users(world, ["a", "b", "c"])
        node = users["a"][0]
        node.directory.form_group("team", "a", ["b", "c"])
        result = node.engine.execute_group("team", "echo", "ping")
        assert [r.member for r in result.results] == ["b", "c"]

    def test_dead_member_captured_not_raised(self, world):
        users = setup_users(world, ["a", "b", "c"])
        world.take_down("c")
        result = users["a"][0].engine.execute_group(["b", "c"], "echo", "ping")
        assert not result.all_ok
        assert result.failed[0].member == "c"
        assert result.failed[0].error_type == "UnreachableError"
        with pytest.raises(TransactionError):
            result.value_of("c")

    def test_per_user_args(self, world):
        users = setup_users(world, ["a", "b"])
        result = users["a"][0].engine.execute_group(
            ["a", "b"], "echo", "ping", per_user_args=lambda u: (u.upper(),)
        )
        assert result.value_of("a")["pong"] == "A"
        assert result.value_of("b")["pong"] == "B"

    def test_aggregator_applied(self, world):
        users = setup_users(world, ["a", "b"])
        out = users["a"][0].engine.execute_group(
            ["a", "b"], "echo", "ping", 3, aggregator=collect_all
        )
        assert out["a"]["pong"] == 3


class TestAggregators:
    def _results(self, world, slots_by_user):
        users = setup_users(world, list(slots_by_user))
        for name, slots in slots_by_user.items():
            users[name][1].set_slots(slots)
        engine = users[list(slots_by_user)[0]][0].engine
        return engine.execute_group(list(slots_by_user), "echo", "free_slots")

    def test_intersect_lists(self, world):
        group = self._results(
            world, {"a": [1, 2, 3, 4], "b": [2, 3, 5], "c": [3, 2, 9]}
        )
        assert group.aggregate(intersect_lists) == [2, 3]

    def test_intersect_empty_on_failure(self):
        world = SyDWorld()
        users = setup_users(world, ["a", "b"])
        users["a"][1].set_slots([1, 2])
        users["b"][1].set_slots([1, 2])
        world.take_down("b")
        group = users["a"][0].engine.execute_group(["a", "b"], "echo", "free_slots")
        assert group.aggregate(intersect_lists) == []

    def test_merge_lists(self, world):
        group = self._results(world, {"a": [1], "b": [2, 3]})
        assert group.aggregate(merge_lists) == [1, 2, 3]

    def test_first_success_and_count(self, world):
        group = self._results(world, {"a": [7], "b": [8]})
        assert group.aggregate(first_success) == [7]
        assert group.aggregate(count_success) == 2

    def test_require_all_raises_on_failure(self, world):
        users = setup_users(world, ["a", "b"])
        world.take_down("b")
        group = users["a"][0].engine.execute_group(["a", "b"], "echo", "ping")
        with pytest.raises(TransactionError, match="b\\(UnreachableError\\)"):
            group.aggregate(require_all)

    def test_quorum(self, world):
        users = setup_users(world, ["a", "b", "c"])
        world.take_down("c")
        group = users["a"][0].engine.execute_group(["a", "b", "c"], "echo", "ping")
        assert group.aggregate(quorum(0.5)) is True
        assert group.aggregate(quorum(0.9)) is False

    def test_quorum_validates_fraction(self):
        with pytest.raises(ValueError):
            quorum(0.0)
        with pytest.raises(ValueError):
            quorum(1.5)

    def test_first_success_raises_when_all_fail(self, world):
        users = setup_users(world, ["a", "b"])
        world.take_down("b")
        group = users["a"][0].engine.execute_group(["b"], "echo", "ping")
        with pytest.raises(TransactionError):
            group.aggregate(first_success)


class TestAuthentication:
    def make_auth_world(self):
        world = SyDWorld(seed=1, auth_passphrase="net-secret")
        a = world.add_node("a", password="pw-a")
        b = world.add_node("b", password="pw-b")
        for name, node in [("a", a), ("b", b)]:
            obj = Echo(f"{name}_echo")
            obj.set_slots([])
            node.listener.publish_object(obj, user_id=name, service="echo")
        # b authorizes a.
        b.auth_table.grant("a", "pw-a")
        return world, a, b

    def test_authorized_call_succeeds(self):
        world, a, b = self.make_auth_world()
        assert a.engine.execute("b", "echo", "ping", 1)["pong"] == 1

    def test_unauthorized_caller_rejected(self):
        world, a, b = self.make_auth_world()
        # a has not granted b.
        with pytest.raises(AuthenticationError):
            b.engine.execute("a", "echo", "ping")
        assert world.node("a").listener.rejected == 1

    def test_wrong_password_rejected(self):
        world, a, b = self.make_auth_world()
        b.auth_table.grant("a", "different-password")
        with pytest.raises(AuthenticationError):
            a.engine.execute("b", "echo", "ping")

    def test_missing_credentials_rejected(self):
        world, a, b = self.make_auth_world()
        a.engine.credentials = None  # strip credentials
        with pytest.raises(AuthenticationError, match="requires credentials"):
            a.engine.execute("b", "echo", "ping")

    def test_kernel_objects_exempt_from_auth(self):
        world, a, b = self.make_auth_world()
        # _syd_links calls carry no app credentials but must work.
        rows = a.engine.execute("b", "_syd_links", "list_link_rows")
        assert rows == []
