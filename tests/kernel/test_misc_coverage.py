"""Direct tests for small public APIs exercised only indirectly elsewhere."""

import pytest

from repro import SyDWorld
from repro.device.object import SyDDeviceObject, exported
from repro.net.address import DeviceClass, NodeAddress
from repro.net.message import Message
from repro.util.errors import NetworkError, UnknownServiceError


class Thing(SyDDeviceObject):
    @exported
    def hello(self):
        return "hi"


class TestListenerExtras:
    def test_unpublish_object(self, world):
        node = world.add_node("a")
        obj = Thing("thing")
        node.listener.publish_object(obj)
        assert node.listener.registry.has("thing", "hello")
        node.listener.unpublish_object(obj)
        assert not node.listener.registry.has("thing", "hello")

    def test_post_invoke_hook_add_and_remove(self, world):
        node = world.add_node("a")
        obj = Thing("thing")
        node.listener.publish_object(obj, user_id="a", service="thing")
        seen = []
        remove = node.listener.add_post_invoke_hook(
            lambda o, m, a_, k, r: seen.append((o, m, r))
        )
        node.engine.execute("a", "thing", "hello")
        assert seen == [("thing", "hello", "hi")]
        remove()
        remove()  # idempotent
        node.engine.execute("a", "thing", "hello")
        assert len(seen) == 1

    def test_hook_not_called_on_failure(self, world):
        node = world.add_node("a")
        seen = []
        node.listener.add_post_invoke_hook(lambda *a: seen.append(1))
        with pytest.raises(UnknownServiceError):
            node.engine.execute_on_node(node.node_id, "ghost", "m")
        assert seen == []


class TestNodeDispatch:
    def test_unknown_message_kind_rejected(self, world):
        node = world.add_node("a")
        with pytest.raises(NetworkError, match="cannot handle"):
            node.handle_message(Message("m", "x", node.node_id, "weird.kind", {}))


class TestLinksExtras:
    def test_link_methods_listing(self, trio):
        a = trio["a"]
        a.links.add_link_method("a_res", "change", "b", "res", "on_peer_change")
        rows = a.links.link_methods()
        assert len(rows) == 1
        assert rows[0]["dest_user"] == "b"

    def test_promote_link_direct(self, trio):
        from repro.kernel.linktypes import LinkRef, LinkSubtype, LinkType
        from repro.txn.coordinator import AND

        a = trio["a"]
        link = a.links.create_link(
            LinkType.NEGOTIATION,
            [LinkRef("b", "slot1", "res")],
            constraint=AND,
            subtype=LinkSubtype.TENTATIVE,
        )
        promoted = a.links.promote_link(link.link_id)
        assert promoted.subtype is LinkSubtype.PERMANENT


class TestNetExtras:
    def test_address_url(self):
        assert NodeAddress("phil-device").url() == "syd://phil-device"
        assert str(NodeAddress("x", DeviceClass.PDA)) == "x"

    def test_fault_plan_introspection(self, world):
        world.add_node("a")
        node_id = world.node("a").node_id
        world.take_down("a")
        assert world.transport.faults.is_down(node_id)
        assert world.transport.faults.down_nodes() == {node_id}
        world.bring_up("a")
        assert world.transport.faults.down_nodes() == set()


class TestDatastoreExtras:
    def test_table_all_pks(self):
        from repro.datastore.schema import ColumnType, schema
        from repro.datastore.table import Table

        t = Table("t", schema("id", id=ColumnType.INT))
        t.insert({"id": 3})
        t.insert({"id": 1})
        assert sorted(t.all_pks()) == [1, 3]

    def test_triggers_for_listing(self):
        from repro.datastore.store import RelationalStore
        from repro.datastore.schema import ColumnType, schema
        from repro.datastore.triggers import RowTrigger, TriggerEvent

        s = RelationalStore("x")
        s.create_table("t", schema("id", id=ColumnType.INT))
        trig = RowTrigger("t1", "t", frozenset({TriggerEvent.INSERT}), lambda c: None)
        s.add_trigger(trig)
        assert s.triggers.triggers_for("t") == [trig]
        assert s.triggers.triggers_for("other") == []


class TestMailExtras:
    def test_unread_actions_filtering(self):
        from repro.calendar.notifications import MailSystem

        mail = MailSystem()
        mail.send("a", "b", "fyi")
        mail.send("a", "b", "act!", requires_action=True)
        actions = mail.unread_actions("b")
        assert [m.subject for m in actions] == ["act!"]

    def test_broadcast_skips_sender(self):
        from repro.calendar.notifications import MailSystem

        mail = MailSystem()
        n = mail.broadcast("a", ["a", "b", "c"], "s")
        assert n == 2
        assert mail.inbox("a") == []

    def test_clear(self):
        from repro.calendar.notifications import MailSystem

        mail = MailSystem()
        mail.send("a", "b", "x", requires_action=True)
        mail.clear()
        assert mail.sent == 0 and mail.action_required == 0
        assert mail.inbox("b") == []
