"""Tests for SyDDirectory (service + client over the network)."""

import pytest

from repro.util.errors import (
    DuplicateRegistrationError,
    UnknownGroupError,
    UnknownServiceError,
    UnknownUserError,
)


class TestUsers:
    def test_publish_and_lookup(self, world):
        node = world.add_node("phil")
        rec = node.directory.lookup_user("phil")
        assert rec["node_id"] == "phil-device"
        assert rec["online"] is True
        assert rec["proxy_node"] is None

    def test_duplicate_publish_rejected(self, world):
        node = world.add_node("phil")
        with pytest.raises(DuplicateRegistrationError):
            node.directory.publish_user("phil", "elsewhere")

    def test_unknown_user(self, world):
        node = world.add_node("phil")
        with pytest.raises(UnknownUserError):
            node.directory.lookup_user("nobody")

    def test_list_users(self, world):
        a = world.add_node("zed")
        world.add_node("amy")
        assert a.directory.list_users() == ["amy", "zed"]

    def test_set_online_and_proxy(self, world):
        node = world.add_node("phil")
        node.directory.set_online("phil", False)
        node.directory.set_proxy("phil", "proxy-1")
        rec = node.directory.lookup_user("phil")
        assert rec["online"] is False
        assert rec["proxy_node"] == "proxy-1"

    def test_set_online_unknown_user(self, world):
        node = world.add_node("phil")
        with pytest.raises(UnknownUserError):
            node.directory.set_online("nobody", True)

    def test_unpublish_removes_user_and_services(self, world):
        node = world.add_node("phil")
        node.directory.unpublish_user("phil")
        with pytest.raises(UnknownUserError):
            node.directory.lookup_user("phil")


class TestServices:
    def test_register_and_lookup(self, world):
        node = world.add_node("phil")
        node.directory.register_service("phil", "cal", "phil_cal", ["query", "reserve"])
        svc = node.directory.lookup_service("phil", "cal")
        assert svc["object_name"] == "phil_cal"
        assert svc["methods"] == ["query", "reserve"]

    def test_links_service_registered_on_join(self, world):
        node = world.add_node("phil")
        svc = node.directory.lookup_service("phil", "_syd_links")
        assert svc["object_name"] == "_syd_links"
        assert "cascade_delete" in svc["methods"]

    def test_register_for_unknown_user(self, world):
        node = world.add_node("phil")
        with pytest.raises(UnknownUserError):
            node.directory.register_service("ghost", "cal", "x", [])

    def test_duplicate_service(self, world):
        node = world.add_node("phil")
        node.directory.register_service("phil", "cal", "x", [])
        with pytest.raises(DuplicateRegistrationError):
            node.directory.register_service("phil", "cal", "y", [])

    def test_unknown_service(self, world):
        node = world.add_node("phil")
        with pytest.raises(UnknownServiceError):
            node.directory.lookup_service("phil", "nope")

    def test_services_of_and_unregister(self, world):
        node = world.add_node("phil")
        node.directory.register_service("phil", "cal", "x", [])
        services = {s["service"] for s in node.directory.services_of("phil")}
        assert services == {"_syd_links", "cal"}
        assert node.directory.unregister_service("phil", "cal") is True
        assert node.directory.unregister_service("phil", "cal") is False


class TestGroups:
    def test_form_and_query_group(self, world):
        a = world.add_node("a")
        world.add_node("b")
        world.add_node("c")
        a.directory.form_group("committee", "a", ["a", "b", "c"])
        assert a.directory.group_members("committee") == ["a", "b", "c"]
        assert a.directory.list_groups() == ["committee"]

    def test_group_requires_published_members(self, world):
        a = world.add_node("a")
        with pytest.raises(UnknownUserError):
            a.directory.form_group("g", "a", ["a", "ghost"])

    def test_duplicate_group(self, world):
        a = world.add_node("a")
        a.directory.form_group("g", "a", ["a"])
        with pytest.raises(DuplicateRegistrationError):
            a.directory.form_group("g", "a", ["a"])

    def test_add_remove_member(self, world):
        a = world.add_node("a")
        world.add_node("b")
        a.directory.form_group("g", "a", ["a"])
        a.directory.add_member("g", "b")
        a.directory.add_member("g", "b")  # idempotent
        assert a.directory.group_members("g") == ["a", "b"]
        a.directory.remove_member("g", "b")
        assert a.directory.group_members("g") == ["a"]

    def test_add_unknown_member(self, world):
        a = world.add_node("a")
        a.directory.form_group("g", "a", ["a"])
        with pytest.raises(UnknownUserError):
            a.directory.add_member("g", "ghost")

    def test_disband(self, world):
        a = world.add_node("a")
        a.directory.form_group("g", "a", ["a"])
        a.directory.disband_group("g")
        with pytest.raises(UnknownGroupError):
            a.directory.group_members("g")
        with pytest.raises(UnknownGroupError):
            a.directory.disband_group("g")
