"""Tests for coordination link records."""

import pytest

from repro.kernel.linktypes import (
    Link,
    LinkRef,
    LinkSubtype,
    LinkType,
    format_constraint,
    parse_constraint,
)
from repro.txn.coordinator import AND, OR, XOR, at_least, exactly
from repro.util.errors import InvalidLinkError


def make_link(**overrides):
    defaults = dict(
        link_id="l1",
        owner="a",
        ltype=LinkType.NEGOTIATION,
        subtype=LinkSubtype.PERMANENT,
        source_entity={"slot": 1},
        refs=(LinkRef("b", {"slot": 1}), LinkRef("c", {"slot": 1})),
        constraint=AND,
        priority=2,
        created_at=10.0,
        expires_at=100.0,
        context={"meeting_id": "m1"},
    )
    defaults.update(overrides)
    return Link(**defaults)


class TestValidation:
    def test_negotiation_requires_constraint(self):
        with pytest.raises(InvalidLinkError):
            make_link(constraint=None)

    def test_subscription_rejects_constraint(self):
        with pytest.raises(InvalidLinkError):
            make_link(ltype=LinkType.SUBSCRIPTION, constraint=AND)

    def test_subscription_without_constraint_ok(self):
        link = make_link(ltype=LinkType.SUBSCRIPTION, constraint=None)
        assert link.ltype is LinkType.SUBSCRIPTION

    def test_at_least_one_ref(self):
        with pytest.raises(InvalidLinkError):
            make_link(refs=())

    def test_waiting_requires_tentative(self):
        with pytest.raises(InvalidLinkError):
            make_link(waiting_on="l0")
        link = make_link(subtype=LinkSubtype.TENTATIVE, waiting_on="l0")
        assert link.waiting_on == "l0"

    def test_expiry_before_creation_rejected(self):
        with pytest.raises(InvalidLinkError):
            make_link(created_at=50.0, expires_at=10.0)


class TestBehaviour:
    def test_is_expired(self):
        link = make_link()
        assert not link.is_expired(99.0)
        assert link.is_expired(100.0)
        assert not make_link(expires_at=None).is_expired(1e9)

    def test_promoted_copy(self):
        link = make_link(subtype=LinkSubtype.TENTATIVE, waiting_on="l0")
        p = link.promoted()
        assert p.subtype is LinkSubtype.PERMANENT
        assert p.waiting_on is None
        assert link.subtype is LinkSubtype.TENTATIVE  # original unchanged

    def test_cascade_id_defaults_to_link_id(self):
        assert make_link(context={}).cascade_id == "l1"
        assert make_link(context={"cascade_id": "m9"}).cascade_id == "m9"


class TestConstraintSerialization:
    @pytest.mark.parametrize("constraint", [AND, OR, XOR, at_least(3), exactly(2)])
    def test_roundtrip(self, constraint):
        assert parse_constraint(format_constraint(constraint)) == constraint

    def test_none_roundtrip(self):
        assert format_constraint(None) is None
        assert parse_constraint(None) is None

    def test_garbage_rejected(self):
        with pytest.raises(InvalidLinkError):
            parse_constraint("sometimes")


class TestRowMapping:
    def test_roundtrip(self):
        link = make_link(subtype=LinkSubtype.TENTATIVE, waiting_on="l0", constraint=at_least(2))
        assert Link.from_row(link.to_row()) == link

    def test_subscription_roundtrip_with_on_change(self):
        link = make_link(
            ltype=LinkType.SUBSCRIPTION,
            constraint=None,
            refs=(LinkRef("b", [1, 2], service="cal", on_change="notify"),),
        )
        back = Link.from_row(link.to_row())
        assert back.refs[0].on_change == "notify"
        assert back.refs[0].service == "cal"
        assert back == link
