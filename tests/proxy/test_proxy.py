"""Tests for proxy takeover/handback (paper §5.2)."""

import pytest

from repro import SyDWorld
from repro.device.resource import ResourceObject
from repro.net.address import DeviceClass, NodeAddress
from repro.kernel.listener import SyDListener
from repro.proxy.device import ProxiedDevice
from repro.proxy.nameserver import NameServerService
from repro.proxy.proxy import ProxyHost
from repro.util.errors import DirectoryError, UnreachableError


@pytest.fixture
def proxy_world():
    """World with name server, one proxy host, and user 'phil' enrolled."""
    world = SyDWorld(seed=5)

    ns = NameServerService()
    ns_listener = SyDListener("syd-nameserver")
    ns_listener.publish_object(ns)
    world.transport.register(
        NodeAddress("syd-nameserver", DeviceClass.SERVER),
        lambda msg: ns_listener.handle_invoke(msg),
    )

    host = ProxyHost("proxy-1", world.transport, nameserver_node="syd-nameserver")
    host.register_factory(
        "resource", lambda user, store: ResourceObject(f"{user}_res", store)
    )

    phil = world.add_node("phil")
    obj = ResourceObject("phil_res", phil.store, phil.locks)
    phil.listener.publish_object(obj, user_id="phil", service="res")
    obj.add("slot1")
    obj.add("slot2")

    device = ProxiedDevice(phil, "syd-nameserver")
    device.export_service("res", "phil_res", "resource")
    device.attach()

    caller = world.add_node("caller")
    return world, host, phil, device, caller


class TestEnrollment:
    def test_attach_assigns_and_enrolls(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        assert device.proxy_node == "proxy-1"
        assert host.session("phil").replica.get("resources", "slot1")["status"] == "free"
        assert phil.directory.lookup_user("phil")["proxy_node"] == "proxy-1"

    def test_unknown_factory_rejected(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        device._object_specs.append(
            {"service": "x", "object_name": "o", "factory": "missing"}
        )
        with pytest.raises(DirectoryError, match="factory"):
            device.attach()

    def test_unenrolled_user_rejected(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        with pytest.raises(DirectoryError, match="not enrolled"):
            host.session("ghost")


class TestFailover:
    def test_engine_fails_over_to_proxy(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        world.take_down("phil")
        row = caller.engine.execute("phil", "res", "read", "slot1")
        assert row["status"] == "free"
        assert caller.engine.proxy_fallbacks == 1
        assert host.session("phil").serving_calls == 1

    def test_single_entity_for_outsider(self, proxy_world):
        """The caller cannot tell device from proxy: same results up or down."""
        world, host, phil, device, caller = proxy_world
        up = caller.engine.execute("phil", "res", "read", "slot1")
        world.take_down("phil")
        down = caller.engine.execute("phil", "res", "read", "slot1")
        assert up == down

    def test_no_proxy_means_unreachable(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        phil.directory.set_proxy("phil", None)
        world.take_down("phil")
        with pytest.raises(UnreachableError):
            caller.engine.execute("phil", "res", "read", "slot1")

    def test_writes_at_proxy_are_journaled(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        world.take_down("phil")
        caller.engine.execute("phil", "res", "set_status", "slot1", "busy")
        session = host.session("phil")
        assert len(session.journal) == 1
        assert session.replica.get("resources", "slot1")["status"] == "busy"


class TestSync:
    def test_sync_ships_device_changes(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        phil.store.update("resources", None, {"status": "busy"})
        assert device.sync() == 2  # two rows updated
        replica = host.session("phil").replica
        assert replica.get("resources", "slot1")["status"] == "busy"

    def test_sync_is_incremental(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        from repro.datastore.predicate import where

        phil.store.update("resources", where("key") == "slot1", {"status": "busy"})
        device.sync()
        phil.store.update("resources", where("key") == "slot2", {"status": "busy"})
        assert device.sync() == 1

    def test_sync_not_journaled_as_proxy_writes(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        phil.store.update("resources", None, {"status": "busy"})
        device.sync()
        assert len(host.session("phil").journal) == 0


class TestHandback:
    def test_reconnect_replays_proxy_writes(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        world.take_down("phil")
        caller.engine.execute("phil", "res", "set_status", "slot1", "busy")
        caller.engine.execute("phil", "res", "set_status", "slot2", "busy")
        world.bring_up("phil")
        applied = device.reconnect()
        assert applied == 2
        assert phil.store.get("resources", "slot1")["status"] == "busy"
        assert phil.store.get("resources", "slot2")["status"] == "busy"

    def test_full_cycle_device_and_replica_converge(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        from repro.datastore.predicate import where

        # Device-side change, synced.
        phil.store.update("resources", where("key") == "slot1", {"status": "busy"})
        device.sync()
        # Down; proxy-side change.
        world.take_down("phil")
        caller.engine.execute("phil", "res", "set_status", "slot2", "reserved")
        # Back up; handback.
        world.bring_up("phil")
        device.reconnect()
        replica = host.session("phil").replica
        assert phil.store.select("resources") == replica.select("resources")

    def test_handback_clears_journal(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        world.take_down("phil")
        caller.engine.execute("phil", "res", "set_status", "slot1", "busy")
        world.bring_up("phil")
        device.reconnect()
        assert len(host.session("phil").journal) == 0
        # Second reconnect replays nothing.
        assert device.reconnect() == 0


class TestDirectoryIntegration:
    def test_announce_down_marks_offline(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        device.announce_down()
        assert phil.directory.lookup_user("phil")["online"] is False
        world.take_down("phil")
        world.bring_up("phil")
        device.reconnect()
        assert phil.directory.lookup_user("phil")["online"] is True

    def test_control_object_sessions_listing(self, proxy_world):
        world, host, phil, device, caller = proxy_world
        assert caller.engine.execute_on_node("proxy-1", "_syd_proxy", "sessions") == ["phil"]
        assert (
            caller.engine.execute_on_node("proxy-1", "_syd_proxy", "serving_calls", "phil")
            == 0
        )
