"""Tests for the Name Server."""

import pytest

from repro.net.address import DeviceClass, NodeAddress
from repro.proxy.nameserver import (
    NAMESERVER_OBJECT,
    NameServerClient,
    NameServerService,
)
from repro.kernel.listener import SyDListener
from repro.util.errors import DirectoryError, DuplicateRegistrationError


@pytest.fixture
def ns_world(world):
    """World with a name-server node attached."""
    service = NameServerService()
    listener = SyDListener("syd-nameserver")
    listener.publish_object(service)
    world.transport.register(
        NodeAddress("syd-nameserver", DeviceClass.SERVER),
        lambda msg: listener.handle_invoke(msg),
    )
    return world, service


def client(world, node_id="tester"):
    world.transport.register(
        NodeAddress(node_id, DeviceClass.WORKSTATION), lambda m: {}
    )
    return NameServerClient(node_id, world.transport)


def test_register_proxy_and_client(ns_world):
    world, _ = ns_world
    c = client(world)
    assert c.register_proxy("proxy-1") == 1
    assert c.register_client("phil") == "proxy-1"
    assert c.proxy_of("phil") == "proxy-1"
    assert c.list_proxies() == ["proxy-1"]
    assert c.list_clients() == ["phil"]


def test_round_robin_assignment(ns_world):
    world, _ = ns_world
    c = client(world)
    c.register_proxy("p1")
    c.register_proxy("p2")
    assigned = [c.register_client(f"u{i}") for i in range(4)]
    assert assigned == ["p1", "p2", "p1", "p2"]
    assert c.stats() == {"p1": 2, "p2": 2}


def test_sticky_assignment(ns_world):
    world, _ = ns_world
    c = client(world)
    c.register_proxy("p1")
    c.register_proxy("p2")
    first = c.register_client("phil")
    assert c.register_client("phil") == first


def test_no_proxies_is_an_error(ns_world):
    world, _ = ns_world
    c = client(world)
    with pytest.raises(DirectoryError):
        c.register_client("phil")


def test_duplicate_proxy_rejected(ns_world):
    world, _ = ns_world
    c = client(world)
    c.register_proxy("p1")
    with pytest.raises(DuplicateRegistrationError):
        c.register_proxy("p1")


def test_unassigned_user_has_no_proxy(ns_world):
    world, _ = ns_world
    c = client(world)
    assert c.proxy_of("nobody") is None


def test_object_name_constant():
    assert NameServerService().name == NAMESERVER_OBJECT
