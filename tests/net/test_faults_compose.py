"""Regression: FaultPlan.partition layers compose instead of replacing.

An earlier FaultPlan kept a single group list, so a second ``partition()``
call silently *replaced* the first — injecting a new fault would heal the
previous one. Partitions are now layers: two nodes are reachable only
when no active layer separates them.
"""

from repro.net.faults import FaultPlan


def test_second_partition_does_not_heal_the_first():
    plan = FaultPlan()
    plan.partition({"a"}, {"b", "c"})
    assert not plan.reachable("a", "b")
    plan.partition({"a", "b"}, {"c"})
    # the regression: layer 1 must still separate a from b
    assert not plan.reachable("a", "b")
    assert not plan.reachable("b", "c")
    assert plan.partition_layers() == 2


def test_layers_intersect():
    plan = FaultPlan()
    plan.partition({"a", "b"}, {"c", "d"})
    assert plan.reachable("a", "b")
    assert not plan.reachable("a", "c")
    plan.partition({"a", "c"}, {"b", "d"})
    # now every cross pair is cut by one of the two layers
    assert not plan.reachable("a", "b")  # layer 2
    assert not plan.reachable("a", "c")  # layer 1
    assert not plan.reachable("a", "d")  # both
    assert plan.reachable("b", "b")


def test_backbone_nodes_reach_everyone_in_that_layer():
    plan = FaultPlan()
    plan.partition({"a"}, {"b"})
    # "x" is named in no group: backbone, reaches both sides.
    assert plan.reachable("x", "a")
    assert plan.reachable("x", "b")
    assert plan.reachable("a", "x")
    plan.partition({"x"}, {"a", "b"})
    # a second layer can cut the backbone node off
    assert not plan.reachable("x", "a")


def test_heal_removes_every_layer():
    plan = FaultPlan()
    plan.partition({"a"}, {"b"})
    plan.partition({"b"}, {"c"})
    assert plan.partition_layers() == 2
    assert plan.partitioned_nodes() == {"a", "b", "c"}
    plan.heal_partition()
    assert plan.partition_layers() == 0
    assert plan.partitioned_nodes() == set()
    assert plan.reachable("a", "b")
    assert plan.reachable("b", "c")


def test_empty_partition_call_is_a_noop():
    plan = FaultPlan()
    plan.partition()
    assert plan.partition_layers() == 0
    assert plan.reachable("a", "b")


def test_down_nodes_trump_partition_membership():
    plan = FaultPlan()
    plan.partition({"a", "b"}, {"c"})
    plan.set_down("a")
    assert not plan.reachable("a", "b")
    assert not plan.reachable("b", "a")
    plan.set_up("a")
    assert plan.reachable("a", "b")
