"""Unit tests for the receiver-side dedup table (repro.net.dedup)."""

from repro.datastore.store import RelationalStore
from repro.net.dedup import (
    EXECUTE,
    FENCED,
    REPLAY,
    SUPPRESS,
    DedupPersistence,
    DedupTable,
)


class TestAdmitRecordReplay:
    def test_first_sighting_executes_then_replays(self):
        table = DedupTable()
        verdict, cached = table.admit("a", 1, 1)
        assert (verdict, cached) == (EXECUTE, None)
        table.record("a", 1, 1, {"result": 42})
        verdict, cached = table.admit("a", 1, 1)
        assert verdict == REPLAY
        assert cached == {"result": 42}
        assert table.hits == 1 and table.executions == 1

    def test_distinct_seqs_are_independent(self):
        table = DedupTable()
        table.record("a", 1, 1, {"result": "x"})
        assert table.admit("a", 1, 2)[0] == EXECUTE

    def test_distinct_senders_are_independent(self):
        table = DedupTable()
        table.record("a", 1, 1, {"result": "x"})
        assert table.admit("b", 1, 1)[0] == EXECUTE

    def test_watermark_advances_contiguously(self):
        table = DedupTable()
        for seq in (1, 2, 3):
            table.record("a", 1, seq, {"result": seq})
        assert table.watermark("a") == (1, 3)

    def test_out_of_order_seqs_park_in_pending_then_drain(self):
        table = DedupTable()
        table.record("a", 1, 1, {"result": 1})
        table.record("a", 1, 3, {"result": 3})  # gap at 2
        assert table.watermark("a") == (1, 1)
        table.record("a", 1, 2, {"result": 2})  # gap fills, 3 drains
        assert table.watermark("a") == (1, 3)

    def test_gap_never_advances_watermark(self):
        # An abandoned seq (request dropped, caller gave up) must stall
        # the contiguous point — seqs above it stay replayable but are
        # never folded into the watermark.
        table = DedupTable()
        table.record("a", 1, 2, {"result": 2})
        table.record("a", 1, 3, {"result": 3})
        assert table.watermark("a") == (1, 0)
        assert table.admit("a", 1, 3)[0] == REPLAY


class TestBounds:
    def test_lru_eviction_at_capacity(self):
        table = DedupTable(capacity=3)
        for seq in range(1, 5):
            table.record("a", 1, seq, {"result": seq})
        assert table.cached_replies() == 3
        assert table.evicted == 1
        # The oldest reply went; admitting its key suppresses (processed,
        # reply gone) instead of replaying or re-executing.
        assert table.admit("a", 1, 1)[0] == SUPPRESS
        assert table.suppressed == 1

    def test_watermark_pruning_below_window(self):
        table = DedupTable(window=2)
        for seq in range(1, 7):
            table.record("a", 1, seq, {"result": seq})
        # contig=6, window=2: seqs <= 4 are pruned.
        assert table.admit("a", 1, 6)[0] == REPLAY
        assert table.admit("a", 1, 1)[0] == SUPPRESS


class TestIncarnationFencing:
    def test_older_incarnation_is_fenced(self):
        table = DedupTable()
        table.record("a", 2, 1, {"result": "new"})
        assert table.admit("a", 1, 9)[0] == FENCED
        assert table.fenced == 1

    def test_new_incarnation_resets_sequence_space(self):
        table = DedupTable()
        table.record("a", 1, 1, {"result": "old"})
        # Seq 1 of incarnation 2 is NOT a duplicate of seq 1 of inc 1.
        assert table.admit("a", 2, 1)[0] == EXECUTE
        # The old-epoch reply was pruned at the transition.
        assert table.cached_replies() == 0

    def test_fencing_leaves_other_senders_alone(self):
        table = DedupTable()
        table.record("a", 1, 1, {"result": "a"})
        table.record("b", 1, 1, {"result": "b"})
        table.admit("a", 2, 1)
        assert table.admit("b", 1, 1)[0] == REPLAY


class TestPersistenceAndRestart:
    def test_restart_without_persistence_forgets_everything(self):
        table = DedupTable()
        table.record("a", 1, 1, {"result": 1})
        table.restart()
        assert table.watermark("a") is None
        assert table.admit("a", 1, 1)[0] == EXECUTE

    def test_watermark_survives_restart_reply_cache_does_not(self):
        store = RelationalStore("n1")
        table = DedupTable(persist=DedupPersistence(store))
        table.record("a", 1, 1, {"result": 1})
        table.restart()
        assert table.watermark("a") == (1, 1)
        assert table.cached_replies() == 0
        # Processed but reply lost with the power-cycle: suppress, never
        # re-execute.
        assert table.admit("a", 1, 1)[0] == SUPPRESS

    def test_persistence_round_trips_pending_set(self):
        store = RelationalStore("n2")
        table = DedupTable(persist=DedupPersistence(store))
        table.record("a", 3, 2, {"result": 2})  # out of order: pending={2}
        reloaded = DedupPersistence(store).load()
        assert reloaded["a"].incarnation == 3
        assert reloaded["a"].contig == 0
        assert reloaded["a"].pending == {2}

    def test_persistence_updates_existing_row(self):
        store = RelationalStore("n3")
        table = DedupTable(persist=DedupPersistence(store))
        table.record("a", 1, 1, {"result": 1})
        table.record("a", 1, 2, {"result": 2})
        assert len(store.select(DedupPersistence.TABLE)) == 1
        assert DedupPersistence(store).load()["a"].contig == 2
