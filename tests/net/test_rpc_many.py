"""Tests for scatter-gather batches (Transport.rpc_many)."""

import pytest

from repro.net.address import DeviceClass, NodeAddress
from repro.net.latency import ConstantLatency, LatencyModel, UniformLatency
from repro.net.stats import latency_bucket
from repro.net.transport import RpcCall, Transport
from repro.util.errors import (
    MessageDropped,
    RemoteError,
    SlotUnavailableError,
    UnreachableError,
)


class PerDestLatency(LatencyModel):
    """Fixed one-way delay per destination node (src pays nothing)."""

    def __init__(self, delays, default=0.001):
        self.delays = dict(delays)
        self.default = default

    def delay(self, src, dst, message):
        return self.delays.get(dst.node_id, self.default)


def attach(transport, node_id, handler=None, device=DeviceClass.WORKSTATION):
    transport.register(
        NodeAddress(node_id, device), handler or (lambda msg: {"echo": msg.payload})
    )


def make_world(latency=None, nodes=("a", "b", "c", "d")):
    t = Transport(latency=latency or ConstantLatency(0.5))
    for n in nodes:
        attach(t, n)
    return t


class TestHappyPath:
    def test_outcomes_in_call_order_with_values(self):
        t = make_world()
        outcomes = t.rpc_many(
            "a", [RpcCall("b", "ping", {"i": 1}), RpcCall("c", "ping", {"i": 2})]
        )
        assert [o.dst for o in outcomes] == ["b", "c"]
        assert all(o.ok for o in outcomes)
        assert outcomes[0].value == {"echo": {"i": 1}}
        assert outcomes[1].value == {"echo": {"i": 2}}

    def test_bare_tuples_accepted_as_calls(self):
        t = make_world()
        outcomes = t.rpc_many("a", [("b", "ping", {"i": 1}), ("c", "ping")])
        assert all(o.ok for o in outcomes)

    def test_clock_advances_by_max_leg_not_sum(self):
        # Replies travel back to "a" (0.1). Leg b: 0.1 + 0.1; leg c:
        # 0.4 + 0.1. The batch takes the slower leg's round trip (0.5),
        # not the 0.7 a sequential pair of rpcs would take.
        t = make_world(latency=PerDestLatency({"b": 0.1, "c": 0.4, "a": 0.1}))
        t.rpc_many("a", [RpcCall("b", "ping"), RpcCall("c", "ping")])
        assert t.clock.now() == pytest.approx(0.5)

    def test_per_leg_delays_still_summed_into_stats(self):
        t = make_world(latency=PerDestLatency({"b": 0.1, "c": 0.4, "a": 0.1}))
        t.rpc_many("a", [RpcCall("b", "ping"), RpcCall("c", "ping")])
        # Network busy time is the sum over all 4 message legs: 0.2 + 0.5.
        assert t.stats.latency == pytest.approx(0.7)
        assert t.stats.messages == 4

    def test_batch_counters_and_histogram(self):
        t = make_world()
        t.rpc_many("a", [RpcCall("b", "ping"), RpcCall("c", "ping"), RpcCall("d", "ping")])
        assert t.stats.concurrent_batches == 1
        assert t.stats.batched_legs == 3
        # one batch, max delay 1.0 s -> the "<=1024ms" power-of-two bucket
        assert t.stats.batch_latency_hist == {"<=1024ms": 1}

    def test_empty_batch_is_free(self):
        t = make_world()
        assert t.rpc_many("a", []) == []
        assert t.clock.now() == 0.0
        assert t.stats.concurrent_batches == 0


class TestPerLegFaults:
    def test_down_destination_is_a_leg_outcome_not_an_exception(self):
        t = make_world()
        t.faults.set_down("c")
        outcomes = t.rpc_many("a", [RpcCall("b", "ping"), RpcCall("c", "ping")])
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert isinstance(outcomes[1].error, UnreachableError)
        assert outcomes[1].delay == 0.0

    def test_failed_leg_does_not_slow_the_batch(self):
        # c is both down and slow; only b's delay reaches the clock.
        t = make_world(latency=PerDestLatency({"b": 0.1, "c": 9.0, "a": 0.1}))
        t.faults.set_down("c")
        t.rpc_many("a", [RpcCall("b", "ping"), RpcCall("c", "ping")])
        assert t.clock.now() == pytest.approx(0.2)

    def test_drop_rule_matches_one_leg(self):
        t = make_world()
        t.faults.add_drop_rule(lambda msg: msg.dst == "d")
        outcomes = t.rpc_many("a", [RpcCall("b", "ping"), RpcCall("d", "ping")])
        assert outcomes[0].ok
        assert isinstance(outcomes[1].error, MessageDropped)

    def test_remote_library_error_keeps_its_type(self):
        t = make_world()

        def refuse(msg):
            raise SlotUnavailableError("slot is taken")

        attach(t, "err", refuse)
        outcomes = t.rpc_many("a", [RpcCall("err", "ping"), RpcCall("b", "ping")])
        assert isinstance(outcomes[0].error, SlotUnavailableError)
        assert outcomes[1].ok

    def test_remote_crash_becomes_remote_error(self):
        t = make_world()

        def boom(msg):
            raise ValueError("bad input")

        attach(t, "err", boom)
        outcomes = t.rpc_many("a", [RpcCall("err", "ping")])
        assert isinstance(outcomes[0].error, RemoteError)
        assert "bad input" in str(outcomes[0].error)

    def test_erroring_handler_still_costs_request_and_reply(self):
        t = make_world(latency=ConstantLatency(0.5))

        def boom(msg):
            raise ValueError("bad")

        attach(t, "err", boom)
        outcomes = t.rpc_many("a", [RpcCall("err", "ping")])
        # the error reply travels back: clock advances by the full round trip
        assert outcomes[0].delay == pytest.approx(1.0)
        assert t.clock.now() == pytest.approx(1.0)

    def test_unattached_source_raises(self):
        t = make_world()
        with pytest.raises(UnreachableError):
            t.rpc_many("ghost", [RpcCall("b", "ping")])

    def test_all_legs_failing_advances_nothing(self):
        t = make_world()
        t.faults.set_down("b")
        t.faults.set_down("c")
        outcomes = t.rpc_many("a", [RpcCall("b", "ping"), RpcCall("c", "ping")])
        assert not any(o.ok for o in outcomes)
        assert t.clock.now() == 0.0


class TestDeterminism:
    def _run(self, seed):
        import random

        t = Transport(latency=UniformLatency(0.01, 0.2, rng=random.Random(seed)))
        for n in ("a", "b", "c", "d"):
            attach(t, n)
        t.rpc_many("a", [RpcCall("b", "ping"), RpcCall("c", "ping"), RpcCall("d", "ping")])
        t.rpc_many("a", [RpcCall("c", "ping"), RpcCall("d", "ping")])
        return t.clock.now(), t.stats.snapshot()

    def test_same_seed_same_stats(self):
        now1, snap1 = self._run(7)
        now2, snap2 = self._run(7)
        assert now1 == now2
        assert snap1 == snap2

    def test_different_seed_differs(self):
        _, snap1 = self._run(7)
        _, snap2 = self._run(8)
        assert snap1.latency != snap2.latency


class TestLatencyBucket:
    def test_power_of_two_labels(self):
        assert latency_bucket(0.0005) == "<=1ms"
        assert latency_bucket(0.001) == "<=1ms"
        assert latency_bucket(0.0011) == "<=2ms"
        assert latency_bucket(0.05) == "<=64ms"
        assert latency_bucket(1.0) == "<=1024ms"
