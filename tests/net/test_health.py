"""Tests for the phi-accrual health monitor (gray-failure detection)."""

import pytest

from repro.net.health import HealthMonitor
from repro.util.clock import VirtualClock


def fed_monitor(clock, node="b", beats=8, interval=2.0, **kwargs):
    """A monitor that has watched ``node`` heartbeat regularly."""
    monitor = HealthMonitor(clock, **kwargs)
    for _ in range(beats):
        monitor.record_heartbeat(node, True)
        clock.advance(interval)
    return monitor


class TestSuspicion:
    def test_unknown_node_has_zero_suspicion(self):
        monitor = HealthMonitor(VirtualClock())
        assert monitor.suspicion("ghost") == 0.0

    def test_regular_heartbeats_keep_phi_low(self):
        clock = VirtualClock()
        monitor = fed_monitor(clock)
        assert monitor.suspicion("b") < 1.0

    def test_phi_grows_as_arrivals_stop(self):
        clock = VirtualClock()
        monitor = fed_monitor(clock)
        quiet = monitor.suspicion("b")
        clock.advance(1.0)
        late = monitor.suspicion("b")
        clock.advance(1.0)
        very_late = monitor.suspicion("b")
        assert quiet < late < very_late
        clock.advance(60.0)
        # ... and saturates finite (the p floor caps phi at 12).
        assert monitor.suspicion("b") == pytest.approx(12.0)

    def test_failure_streak_raises_phi_between_heartbeats(self):
        clock = VirtualClock()
        monitor = fed_monitor(clock)
        base = monitor.suspicion("b")
        for _ in range(3):
            monitor.record_failure("b")
        assert monitor.suspicion("b") == pytest.approx(
            base + 3 * monitor.fail_weight
        )

    def test_success_clears_failure_streak(self):
        clock = VirtualClock()
        monitor = fed_monitor(clock)
        for _ in range(5):
            monitor.record_failure("b")
        clock.advance(0.5)
        monitor.record_success("b", 0.01)
        assert monitor.suspicion("b") < monitor.fail_weight

    def test_rtt_degradation_is_gray_evidence(self):
        """A node that still answers — ever more slowly — grows suspect
        even though every probe and every RPC 'succeeds'."""
        clock = VirtualClock()
        monitor = fed_monitor(clock)
        for _ in range(6):
            monitor.record_success("b", 0.01)
            clock.advance(2.0)
        healthy = monitor.suspicion("b")
        for _ in range(12):
            monitor.record_success("b", 2.5)
            clock.advance(2.0)
        assert monitor.suspicion("b") > healthy

    def test_forget_drops_history(self):
        clock = VirtualClock()
        monitor = fed_monitor(clock)
        clock.advance(60.0)
        assert monitor.suspicion("b") > 1.0
        monitor.forget("b")
        assert monitor.suspicion("b") == 0.0


class TestRankingAndQuarantine:
    def test_rank_orders_healthiest_first(self):
        clock = VirtualClock()
        monitor = HealthMonitor(clock)
        for _ in range(8):
            monitor.record_heartbeat("a", True)
            monitor.record_heartbeat("b", True)
            clock.advance(2.0)
        for _ in range(4):
            monitor.record_failure("a")
        assert monitor.rank(["a", "b"]) == ["b", "a"]

    def test_rank_is_stable_on_ties(self):
        monitor = HealthMonitor(VirtualClock())
        assert monitor.rank(["z", "a", "m"]) == ["z", "a", "m"]

    def test_quarantine_needs_the_hard_bar(self):
        clock = VirtualClock()
        monitor = fed_monitor(clock)
        assert not monitor.is_quarantined("b")
        for _ in range(30):
            monitor.record_failure("b")
        assert monitor.is_quarantined("b")

    def test_verdicts_are_recorded_with_ground_truth(self):
        clock = VirtualClock()
        monitor = HealthMonitor(clock)
        clock.advance(7.5)
        monitor.record_verdict("b", actually_healthy=True)
        monitor.record_verdict("c", actually_healthy=False)
        assert [(v[1], v[3]) for v in monitor.verdicts] == [
            ("b", True),
            ("c", False),
        ]
        assert monitor.verdicts[0][0] == pytest.approx(7.5)


class TestHedgeDelay:
    def test_clean_node_keeps_full_delay(self):
        monitor = HealthMonitor(VirtualClock())
        assert monitor.hedge_delay("b", 0.25) == pytest.approx(0.25)

    def test_suspect_node_is_hedged_sooner(self):
        clock = VirtualClock()
        monitor = fed_monitor(clock)
        full = monitor.hedge_delay("b", 0.25)
        for _ in range(6):
            monitor.record_failure("b")
        assert monitor.hedge_delay("b", 0.25) < full / 2


class TestSweep:
    def test_sweep_records_arrivals_and_publishes_gauges(self):
        from repro.obs.metrics import MetricsRegistry

        clock = VirtualClock()
        metrics = MetricsRegistry()
        monitor = HealthMonitor(clock, metrics=metrics)
        for _ in range(5):
            monitor.sweep([("a", True), ("b", False)])
            clock.advance(2.0)
        assert monitor.suspicion("b") > monitor.suspicion("a")
        assert metrics.gauge("b", "health.phi") == pytest.approx(
            monitor.suspicion("b"), abs=1e-3
        )

    def test_determinism(self):
        def run():
            clock = VirtualClock()
            monitor = fed_monitor(clock, beats=12)
            monitor.record_failure("b")
            clock.advance(11.0)
            return monitor.snapshot()

        assert run() == run()
