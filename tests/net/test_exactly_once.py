"""End-to-end exactly-once dispatch: lost replies, duplicates, fencing.

These tests drive the full stack (engine → transport → listener → dedup
table) through the fault model and assert the one property the chaos
``double_application`` checker enforces: no idempotency key ever executes
its side effects twice, no matter how the network mangles delivery.
"""

import pytest

from repro.device.resource import ResourceObject
from repro.net.address import DeviceClass, NodeAddress
from repro.net.latency import ConstantLatency
from repro.net.retry import RetryPolicy
from repro.net.transport import Transport
from repro.util.errors import StaleMessageError, UnreachableError
from repro.world import SyDWorld


def make_world(retry=True, dedup=True):
    world = SyDWorld(seed=5, dedup=dedup)
    for user in ("a", "b"):
        node = world.add_node(user)
        obj = ResourceObject(f"{user}_res", node.store, node.locks)
        node.listener.publish_object(obj, user_id=user, service="res")
        obj.add("slot1")
    if retry:
        world.set_retry_policy(RetryPolicy(max_attempts=4))
    return world


def assert_no_double_effects(world):
    listeners = [world.directory_listener] + [
        n.listener for n in world.nodes.values()
    ]
    for listener in listeners:
        doubled = {k: c for k, c in listener.effects.items() if c > 1}
        assert not doubled


class TestLostReply:
    def test_retry_after_lost_reply_replays_instead_of_reexecuting(self):
        world = make_world()
        b_id = world.node("b").node_id
        dropped = {"left": 1}

        def lose_reply(msg):
            return (
                msg.is_reply
                and msg.src == b_id
                and dropped.pop("left", None) is not None
            )

        world.transport.faults.add_drop_rule(lose_reply)
        result = world.node("a").engine.execute("b", "res", "set_status", "slot1", "busy")
        # The write applied exactly once and the retry was answered from
        # the reply cache.
        assert result == 1  # rows updated by set_status
        assert world.node("b").store.get("resources", "slot1")["status"] == "busy"
        assert world.stats.reply_lost == 1
        assert world.stats.retries >= 1
        assert world.node("b").listener.replays == 1
        assert_no_double_effects(world)

    def test_without_retry_the_loss_surfaces_but_the_effect_persisted(self):
        world = make_world(retry=False)
        b_id = world.node("b").node_id
        dropped = {"left": 1}
        world.transport.faults.add_drop_rule(
            lambda m: m.is_reply
            and m.src == b_id
            and dropped.pop("left", None) is not None
        )
        from repro.util.errors import MessageDropped

        with pytest.raises(MessageDropped):
            world.node("a").engine.execute("b", "res", "set_status", "slot1", "busy")
        # The at-least-once hazard in one assertion: the caller saw a
        # failure, yet the handler ran and the write is durable.
        row = world.node("b").store.get("resources", "slot1")
        assert row["status"] == "busy"


class TestDuplicateDelivery:
    def test_duplicate_request_is_replayed_not_reapplied(self):
        world = make_world()
        b_id = world.node("b").node_id
        dup = {"left": 1}
        world.transport.faults.add_duplicate_rule(
            lambda m: m.dst == b_id and dup.pop("left", None) is not None
        )
        world.node("a").engine.execute("b", "res", "set_status", "slot1", "busy")
        assert world.stats.duplicates == 1
        assert world.node("b").listener.replays == 1
        assert_no_double_effects(world)

    def test_dedup_off_lets_a_duplicate_reexecute(self):
        # The ablation: stamping stays on (attribution), tables are gone.
        world = make_world(dedup=False)
        b_id = world.node("b").node_id
        dup = {"left": 1}
        world.transport.faults.add_duplicate_rule(
            lambda m: m.dst == b_id and dup.pop("left", None) is not None
        )
        world.node("a").engine.execute("b", "res", "set_status", "slot1", "busy")
        listener = world.node("b").listener
        assert listener.dedup is None
        doubled = [k for k, c in listener.effects.items() if c > 1]
        assert len(doubled) == 1


class TestIncarnationFencing:
    def test_pre_restart_duplicate_is_fenced_after_restart(self):
        world = make_world()
        a_id, b_id = world.node("a").node_id, world.node("b").node_id
        captured = []
        world.transport.taps.append(
            lambda m: captured.append(m)
            if m.dst == b_id and not m.is_reply and m.kind == "invoke"
            else None
        )
        world.node("a").engine.execute("b", "res", "set_status", "slot1", "busy")
        world.restart("a")
        # Receiver must first see the new epoch to know the old is stale.
        world.node("a").engine.execute("b", "res", "read", "slot1")
        old = next(m for m in captured if m.payload.get("method") == "set_status")
        world.transport.redeliver(old)
        assert world.node("b").listener.dedup.fenced >= 1
        assert_no_double_effects(world)

    def test_restart_restarts_sequence_numbering_without_collisions(self):
        world = make_world()
        world.node("a").engine.execute("b", "res", "read", "slot1")
        inc_before = world.transport.incarnation(world.node("a").node_id)
        world.restart("a")
        assert world.transport.incarnation(world.node("a").node_id) == inc_before + 1
        # Fresh seq 1 under the new incarnation executes normally — it is
        # not mistaken for a duplicate of the old seq 1.
        result = world.node("a").engine.execute("b", "res", "read", "slot1")
        assert result["status"] in ("free", "busy")
        assert_no_double_effects(world)


class TestTransportEdges:
    def _bare(self):
        t = Transport(latency=ConstantLatency(0.001))
        t.register(NodeAddress("a", DeviceClass.WORKSTATION), lambda m: {"ok": True})
        return t

    def test_send_swallows_remote_handler_failure(self):
        t = self._bare()

        def boom(msg):
            raise RuntimeError("handler died")

        t.register(NodeAddress("b", DeviceClass.WORKSTATION), boom)
        t.send("a", "b", "event", {})  # must not raise
        assert t.stats.send_failures == 1

    def test_send_still_raises_before_delivery(self):
        t = self._bare()
        with pytest.raises(UnreachableError):
            t.send("a", "ghost", "event", {})

    def test_sends_are_not_stamped(self):
        t = self._bare()
        seen = []
        t.register(NodeAddress("b", DeviceClass.WORKSTATION), lambda m: seen.append(m))
        t.send("a", "b", "event", {})
        assert seen[0].dedup is None

    def test_loopback_is_exempt_from_drop_and_duplicate_rules(self):
        t = self._bare()
        t.faults.add_drop_rule(lambda m: True)
        t.faults.add_duplicate_rule(lambda m: True)
        assert t.rpc("a", "a", "ping", {}) == {"ok": True}
        assert t.stats.duplicates == 0

    def test_stamping_off_reverts_to_unstamped_wire(self):
        t = self._bare()
        t.stamp_dedup = False
        seen = []
        t.register(NodeAddress("b", DeviceClass.WORKSTATION), lambda m: seen.append(m) or {})
        t.rpc("a", "b", "ping", {})
        assert seen[0].dedup is None
        assert t.next_dedup("a", "b") is None

    def test_stale_message_error_is_not_retryable(self):
        policy = RetryPolicy()
        assert not policy.retryable(StaleMessageError("stale"))
