"""Tests for the simulated transport."""

import pytest

from repro.net.address import DeviceClass, NodeAddress
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.net.transport import Transport
from repro.util.errors import (
    MessageDropped,
    RemoteError,
    SlotUnavailableError,
    UnreachableError,
)


def make_transport(latency=0.001):
    return Transport(latency=ConstantLatency(latency))


def echo_handler(msg):
    return {"echo": msg.payload}


def attach(transport, node_id, handler=echo_handler, device=DeviceClass.WORKSTATION):
    addr = NodeAddress(node_id, device)
    transport.register(addr, handler)
    return addr


class TestRegistration:
    def test_rpc_between_registered_nodes(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        result = t.rpc("a", "b", "ping", {"x": 1})
        assert result == {"echo": {"x": 1}}

    def test_rpc_to_unknown_node_is_unreachable(self):
        t = make_transport()
        attach(t, "a")
        with pytest.raises(UnreachableError):
            t.rpc("a", "ghost", "ping", {})

    def test_rpc_from_unattached_source_fails(self):
        t = make_transport()
        attach(t, "b")
        with pytest.raises(UnreachableError):
            t.rpc("ghost", "b", "ping", {})

    def test_unregister_makes_node_unreachable(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        t.unregister("b")
        with pytest.raises(UnreachableError):
            t.rpc("a", "b", "ping", {})

    def test_known_nodes_sorted(self):
        t = make_transport()
        attach(t, "zeta")
        attach(t, "alpha")
        assert t.known_nodes() == ["alpha", "zeta"]

    def test_address_of(self):
        t = make_transport()
        addr = attach(t, "a", device=DeviceClass.PDA)
        assert t.address_of("a") == addr
        with pytest.raises(UnreachableError):
            t.address_of("nope")


class TestClockAndStats:
    def test_rpc_advances_clock_both_legs(self):
        t = make_transport(latency=0.5)
        attach(t, "a")
        attach(t, "b")
        t.rpc("a", "b", "ping", {})
        assert t.clock.now() == pytest.approx(1.0)

    def test_send_advances_clock_one_leg(self):
        t = make_transport(latency=0.5)
        attach(t, "a")
        attach(t, "b", handler=lambda m: {})
        t.send("a", "b", "note", {})
        assert t.clock.now() == pytest.approx(0.5)

    def test_stats_count_messages_and_replies(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        t.rpc("a", "b", "ping", {})
        snap = t.stats.snapshot()
        assert snap.messages == 2
        assert snap.replies == 1
        assert snap.by_kind["ping"] == 2

    def test_stats_delta(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        t.rpc("a", "b", "ping", {})
        before = t.stats.snapshot()
        t.rpc("a", "b", "ping", {})
        delta = t.stats.snapshot().delta(before)
        assert delta.messages == 2

    def test_bytes_accounted(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        t.rpc("a", "b", "ping", {"blob": "x" * 100})
        assert t.stats.bytes > 100


class TestFaults:
    def test_down_node_unreachable(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        t.faults.set_down("b")
        with pytest.raises(UnreachableError):
            t.rpc("a", "b", "ping", {})
        assert t.stats.unreachable == 1

    def test_node_comes_back_up(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        t.faults.set_down("b")
        t.faults.set_up("b")
        assert t.rpc("a", "b", "ping", {}) == {"echo": {}}

    def test_partition_blocks_cross_group_traffic(self):
        t = make_transport()
        for n in ["a", "b", "c"]:
            attach(t, n)
        t.faults.partition({"a"}, {"b", "c"})
        with pytest.raises(UnreachableError):
            t.rpc("a", "b", "ping", {})
        assert t.rpc("b", "c", "ping", {}) == {"echo": {}}

    def test_heal_partition(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        t.faults.partition({"a"}, {"b"})
        t.faults.heal_partition()
        assert t.rpc("a", "b", "ping", {}) == {"echo": {}}

    def test_unpartitioned_node_reaches_all_groups(self):
        t = make_transport()
        for n in ["a", "b", "backbone"]:
            attach(t, n)
        t.faults.partition({"a"}, {"b"})
        assert t.rpc("backbone", "a", "ping", {}) == {"echo": {}}
        assert t.rpc("backbone", "b", "ping", {}) == {"echo": {}}

    def test_drop_rule(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        remove = t.faults.add_drop_rule(lambda m: m.kind == "ping")
        with pytest.raises(MessageDropped):
            t.rpc("a", "b", "ping", {})
        assert t.stats.dropped == 1
        remove()
        assert t.rpc("a", "b", "ping", {}) == {"echo": {}}


class TestErrorMarshalling:
    def test_library_error_comes_back_typed(self):
        t = make_transport()
        attach(t, "a")

        def failing(msg):
            raise SlotUnavailableError("slot 3 is reserved")

        attach(t, "b", handler=failing)
        with pytest.raises(SlotUnavailableError, match="slot 3"):
            t.rpc("a", "b", "reserve", {})

    def test_arbitrary_error_becomes_remote_error(self):
        t = make_transport()
        attach(t, "a")

        def failing(msg):
            raise KeyError("oops")

        attach(t, "b", handler=failing)
        with pytest.raises(RemoteError) as exc_info:
            t.rpc("a", "b", "x", {})
        assert exc_info.value.error_type == "KeyError"

    def test_none_result_becomes_empty_dict(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b", handler=lambda m: None)
        assert t.rpc("a", "b", "x", {}) == {}
