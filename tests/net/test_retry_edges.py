"""Edge cases of retry_call / rpc_many_with_retry (repro.net.retry)."""

import random

import pytest

from repro.net.address import DeviceClass, NodeAddress
from repro.net.latency import ConstantLatency
from repro.net.retry import RetryPolicy, retry_call, rpc_many_with_retry
from repro.net.stats import NetworkStats
from repro.net.transport import Transport
from repro.util.errors import MessageDropped, RemoteError


class TestRetryCall:
    def test_non_retryable_error_passes_through_untouched(self):
        stats = NetworkStats()
        calls = {"n": 0}

        def fn():
            calls["n"] += 1
            raise RemoteError("ValueError", "application bug")

        with pytest.raises(RemoteError):
            retry_call(RetryPolicy(max_attempts=4), stats, fn)
        # One attempt, no retry accounting: application errors are final.
        assert calls["n"] == 1
        assert stats.retries == 0
        assert stats.retry_successes == 0

    def test_exhaustion_reraises_the_last_error(self):
        stats = NetworkStats()
        errors = [MessageDropped("first"), MessageDropped("second"), MessageDropped("last")]

        def fn():
            raise errors.pop(0)

        with pytest.raises(MessageDropped, match="last"):
            retry_call(RetryPolicy(max_attempts=3), stats, fn)
        assert stats.retries == 2  # two re-attempts, then give up

    def test_success_after_retries_records_one_recovery(self):
        stats = NetworkStats()
        attempts = {"n": 0}

        def fn():
            attempts["n"] += 1
            if attempts["n"] < 3:
                raise MessageDropped("flaky")
            return "ok"

        assert retry_call(RetryPolicy(max_attempts=4), stats, fn) == "ok"
        assert stats.retries == 2
        assert stats.retry_successes == 1

    def test_selective_retryability_flags(self):
        policy = RetryPolicy(retry_dropped=False)
        assert not policy.retryable(MessageDropped("x"))
        with pytest.raises(MessageDropped):
            retry_call(policy, None, lambda: (_ for _ in ()).throw(MessageDropped("x")))


class TestBackoffJitter:
    def test_fixed_seed_gives_identical_backoff_sequences(self):
        a = RetryPolicy(rng=random.Random(42))
        b = RetryPolicy(rng=random.Random(42))
        assert [a.backoff(i) for i in range(1, 6)] == [b.backoff(i) for i in range(1, 6)]

    def test_jitter_stays_within_the_configured_band(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.5, rng=random.Random(7))
        for attempt in range(1, 50):
            assert 0.5 <= policy.backoff(attempt) <= 1.5

    def test_no_rng_means_deterministic_exponential_cap(self):
        policy = RetryPolicy(base_delay=0.2, max_delay=2.0, jitter=0.5)  # rng=None
        assert [policy.backoff(i) for i in (1, 2, 3, 4, 5, 6)] == [
            0.2, 0.4, 0.8, 1.6, 2.0, 2.0
        ]


class TestRpcManyWithRetry:
    def _transport(self):
        t = Transport(latency=ConstantLatency(0.001))
        for node in ("src", "d1", "d2"):
            t.register(NodeAddress(node, DeviceClass.WORKSTATION), lambda m: {"ok": True})
        return t

    def test_only_retryable_legs_are_resent(self):
        t = self._transport()
        invoked = []

        def flaky(msg):
            invoked.append(msg.msg_id)
            raise ValueError("application failure")  # -> RemoteError, final

        t.register(NodeAddress("d2", DeviceClass.WORKSTATION), flaky)
        outcomes = rpc_many_with_retry(
            t, "src", [("d1", "invoke", {}), ("d2", "invoke", {})],
            RetryPolicy(max_attempts=4),
        )
        assert outcomes[0].ok
        assert not outcomes[1].ok and isinstance(outcomes[1].error, RemoteError)
        assert len(invoked) == 1  # RemoteError is not worth re-sending
        assert t.stats.retries == 0

    def test_exhausted_leg_keeps_its_last_error(self):
        t = self._transport()
        t.faults.add_drop_rule(lambda m: m.dst == "d2" and not m.is_reply)
        outcomes = rpc_many_with_retry(
            t, "src", [("d1", "invoke", {}), ("d2", "invoke", {})],
            RetryPolicy(max_attempts=3),
        )
        assert outcomes[0].ok
        assert isinstance(outcomes[1].error, MessageDropped)
        assert t.stats.retries == 2

    def test_resent_legs_reuse_their_idempotency_key(self):
        t = self._transport()
        seen: list[tuple] = []
        drop_first = {"left": 1}
        t.faults.add_drop_rule(
            lambda m: m.src == "d1"
            and m.is_reply
            and drop_first.pop("left", None) is not None
        )
        t.register(
            NodeAddress("d1", DeviceClass.WORKSTATION),
            lambda m: seen.append(m.dedup) or {"ok": True},
        )
        outcomes = rpc_many_with_retry(
            t, "src", [("d1", "invoke", {})], RetryPolicy(max_attempts=4)
        )
        assert outcomes[0].ok
        # Handler ran twice (reply lost once) but both deliveries carried
        # the same key — the receiver's dedup layer can collapse them.
        assert len(seen) == 2
        assert seen[0] == seen[1] is not None
