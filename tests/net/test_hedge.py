"""Tests for first-wins hedged round trips (Transport.rpc_hedged)."""

import random

import pytest

from repro.net.address import DeviceClass, NodeAddress
from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.transport import Transport
from repro.util.errors import SlotUnavailableError, UnreachableError


class PerDestLatency(LatencyModel):
    """Fixed one-way delay per destination node."""

    def __init__(self, delays, default=0.01):
        self.delays = dict(delays)
        self.default = default

    def delay(self, src, dst, message):
        return self.delays.get(dst.node_id, self.default)


def attach(transport, node_id, handler=None):
    transport.register(
        NodeAddress(node_id, DeviceClass.WORKSTATION),
        handler or (lambda msg: {"from": node_id}),
    )


class TestNoHedgeWhenHealthy:
    def test_fast_primary_sends_no_second_leg(self):
        t = Transport(latency=ConstantLatency(0.01))
        for n in ("a", "p", "q"):
            attach(t, n)
        result = t.rpc_hedged("a", "p", "q", "read", {}, hedge_delay=0.25)
        assert result == {"from": "p"}
        assert t.stats.messages == 2  # request + reply, primary only
        assert t.stats.hedges == 0
        assert t.stats.hedge_wins == 0

    def test_primary_error_before_timer_raises_immediately(self):
        t = Transport(latency=ConstantLatency(0.01))
        attach(t, "a")
        attach(t, "q")

        def failing(msg):
            raise SlotUnavailableError("taken")

        attach(t, "p", handler=failing)
        with pytest.raises(SlotUnavailableError):
            t.rpc_hedged("a", "p", "q", "read", {}, hedge_delay=0.25)
        assert t.stats.hedges == 0

    def test_unreachable_primary_raises_without_hedging(self):
        t = Transport(latency=ConstantLatency(0.01))
        attach(t, "a")
        attach(t, "q")
        with pytest.raises(UnreachableError):
            t.rpc_hedged("a", "ghost", "q", "read", {}, hedge_delay=0.25)
        assert t.stats.hedges == 0


class TestHedgeFires:
    def test_backup_wins_against_slow_primary(self):
        t = Transport(latency=PerDestLatency({"p": 3.0, "q": 0.01, "a": 0.01}))
        for n in ("a", "p", "q"):
            attach(t, n)
        result = t.rpc_hedged("a", "p", "q", "read", {}, hedge_delay=0.25)
        assert result == {"from": "q"}
        assert t.stats.hedges == 1
        assert t.stats.hedge_wins == 1
        # Clock advanced to the backup's arrival, not the slow primary's.
        assert t.clock.now() == pytest.approx(0.25 + 0.01 + 0.01)
        # ... but all four legs' traffic was charged.
        assert t.stats.messages == 4

    def test_primary_wins_when_still_faster_than_backup(self):
        t = Transport(latency=PerDestLatency({"p": 0.2, "q": 5.0, "a": 0.2}))
        for n in ("a", "p", "q"):
            attach(t, n)
        # Primary total 0.4 > hedge_delay 0.25, so the hedge fires — but
        # the primary's reply still lands first.
        result = t.rpc_hedged("a", "p", "q", "read", {}, hedge_delay=0.25)
        assert result == {"from": "p"}
        assert t.stats.hedges == 1
        assert t.stats.hedge_wins == 0
        assert t.clock.now() == pytest.approx(0.4)

    def test_pareto_slow_primary_tail_is_cut(self):
        t = Transport(latency=ConstantLatency(0.01))
        for n in ("a", "p", "q"):
            attach(t, n)
        t.faults.slow_node("p", rng=random.Random(5), scale=2.0, shape=1.1)
        total = 0.0
        for _ in range(20):
            before = t.clock.now()
            result = t.rpc_hedged("a", "p", "q", "read", {}, hedge_delay=0.25)
            total += t.clock.now() - before
            assert result["from"] in ("p", "q")
        # Every hedged read completes within hedge_delay + backup RTT.
        assert total / 20 <= 0.25 + 0.02 + 1e-9
        assert t.stats.hedges > 0

    def test_both_legs_failed_raises_primary_error(self):
        t = Transport(latency=PerDestLatency({"p": 3.0}))
        for n in ("a", "p", "q"):
            attach(t, n)
        t.faults.set_down("q")
        t.faults.add_drop_rule(lambda m: m.is_reply and m.dst == "a")
        with pytest.raises(Exception) as exc_info:
            t.rpc_hedged("a", "p", "q", "read", {}, hedge_delay=0.25)
        # Primary's reply was lost; its loss error wins over the backup's.
        assert "p" in str(exc_info.value) or "drop" in str(exc_info.value).lower()

    def test_determinism_across_runs(self):
        def run():
            t = Transport(latency=ConstantLatency(0.01))
            for n in ("a", "p", "q"):
                attach(t, n)
            t.faults.slow_node("p", rng=random.Random(9), scale=1.0, shape=1.5)
            out = []
            for _ in range(10):
                out.append(t.rpc_hedged("a", "p", "q", "read", {}, 0.25)["from"])
            return (out, t.clock.now(), t.stats.messages, t.stats.hedges)

        assert run() == run()
