"""NetworkStats edge cases: bucket boundaries, batch counters, retry
counters, snapshot/delta arithmetic."""

import pytest

from repro.net.stats import NetworkStats, latency_bucket


class TestLatencyBucket:
    def test_zero_and_sub_millisecond(self):
        assert latency_bucket(0.0) == "<=1ms"
        assert latency_bucket(0.0005) == "<=1ms"
        assert latency_bucket(0.001) == "<=1ms"  # boundary is inclusive

    def test_power_of_two_boundaries(self):
        assert latency_bucket(0.0011) == "<=2ms"
        assert latency_bucket(0.002) == "<=2ms"
        assert latency_bucket(0.0021) == "<=4ms"
        assert latency_bucket(0.004) == "<=4ms"
        assert latency_bucket(0.1) == "<=128ms"
        assert latency_bucket(1.0) == "<=1024ms"

    def test_buckets_are_monotone(self):
        delays = [0.0001 * (1.3 ** i) for i in range(40)]
        sizes = [int(latency_bucket(d)[2:-2]) for d in delays]
        assert sizes == sorted(sizes)


class TestBatchCounters:
    def test_empty_batch_counts_once_with_zero_legs(self):
        stats = NetworkStats()
        stats.record_batch(0, 0.0)
        assert stats.concurrent_batches == 1
        assert stats.batched_legs == 0
        assert stats.batch_latency_hist == {"<=1ms": 1}

    def test_batches_accumulate_histogram(self):
        stats = NetworkStats()
        stats.record_batch(3, 0.0008)
        stats.record_batch(5, 0.003)
        stats.record_batch(2, 0.003)
        assert stats.batched_legs == 10
        assert stats.batch_latency_hist == {"<=1ms": 1, "<=4ms": 2}


class TestRetryCounters:
    def test_record_retry_defaults_and_bulk(self):
        stats = NetworkStats()
        stats.record_retry()
        stats.record_retry(3)
        stats.record_retry_success()
        assert stats.retries == 4
        assert stats.retry_successes == 1

    def test_snapshot_and_delta_carry_retry_counters(self):
        stats = NetworkStats()
        stats.record_retry(2)
        before = stats.snapshot()
        stats.record_retry(5)
        stats.record_retry_success(4)
        delta = stats.snapshot().delta(before)
        assert before.retries == 2
        assert delta.retries == 5
        assert delta.retry_successes == 4

    def test_reset_zeroes_retry_counters(self):
        stats = NetworkStats()
        stats.record_retry(7)
        stats.record_retry_success(2)
        stats.reset()
        assert stats.retries == 0
        assert stats.retry_successes == 0
        assert stats.snapshot().retries == 0


class TestSnapshotDelta:
    def test_snapshot_is_immutable_copy(self):
        stats = NetworkStats()
        stats.record_delivery("invoke", 100, 0.002, is_reply=False)
        snap = stats.snapshot()
        stats.record_delivery("invoke", 50, 0.001, is_reply=True)
        assert snap.messages == 1
        assert snap.by_kind == {"invoke": 1}
        assert stats.messages == 2

    def test_delta_subtracts_every_counter(self):
        stats = NetworkStats()
        stats.record_delivery("invoke", 100, 0.002, is_reply=False)
        stats.record_dropped()
        before = stats.snapshot()
        stats.record_delivery("reply", 70, 0.004, is_reply=True)
        stats.record_unreachable()
        stats.record_batch(4, 0.002)
        delta = stats.snapshot().delta(before)
        assert delta.messages == 1
        assert delta.replies == 1
        assert delta.bytes == 70
        assert delta.latency == pytest.approx(0.004)
        assert delta.dropped == 0
        assert delta.unreachable == 1
        # Unchanged kinds survive with an explicit 0 (key-preserving delta)
        assert delta.by_kind == {"reply": 1, "invoke": 0}
        assert delta.concurrent_batches == 1
        assert delta.batched_legs == 4
        assert delta.batch_latency_hist == {"<=2ms": 1}

    def test_delta_preserves_zero_and_negative_keys(self):
        """Regression: plain Counter subtraction silently drops zero and
        negative entries, losing kinds/buckets from deltas."""
        stats = NetworkStats()
        stats.record_delivery("invoke", 10, 0.001, is_reply=False)
        stats.record_delivery("directory", 10, 0.001, is_reply=False)
        stats.record_batch(2, 0.0005)
        before = stats.snapshot()
        stats.record_delivery("invoke", 10, 0.001, is_reply=False)
        delta = stats.snapshot().delta(before)
        # "directory" did not move but must still appear, with count 0.
        assert delta.by_kind == {"invoke": 1, "directory": 0}
        assert "directory" in delta.by_kind
        assert delta.batch_latency_hist == {"<=1ms": 0}
        assert "<=1ms" in delta.batch_latency_hist
        # A reset between snapshots yields *negative* entries, not silence.
        stats.reset()
        gone = stats.snapshot().delta(before)
        assert gone.by_kind["invoke"] == -1
        assert gone.by_kind["directory"] == -1
