"""Tests for latency models."""

import random

import pytest

from repro.net.address import DeviceClass, NodeAddress
from repro.net.latency import (
    CampusNetworkLatency,
    ConstantLatency,
    UniformLatency,
    ZeroLatency,
)
from repro.net.message import Message


def msg(payload=None):
    return Message("m-1", "a", "b", "kind", payload or {})


PDA = NodeAddress("pda", DeviceClass.PDA)
WS = NodeAddress("ws", DeviceClass.WORKSTATION)
SRV = NodeAddress("srv", DeviceClass.SERVER)


def test_zero_latency():
    assert ZeroLatency().delay(PDA, WS, msg()) == 0.0


def test_constant_latency():
    assert ConstantLatency(0.25).delay(PDA, WS, msg()) == 0.25


def test_constant_rejects_negative():
    with pytest.raises(ValueError):
        ConstantLatency(-1)


def test_uniform_latency_within_bounds():
    model = UniformLatency(0.1, 0.2, random.Random(1))
    for _ in range(50):
        d = model.delay(PDA, WS, msg())
        assert 0.1 <= d <= 0.2


def test_uniform_rejects_bad_range():
    with pytest.raises(ValueError):
        UniformLatency(0.5, 0.1)


def test_campus_pda_slower_than_wired():
    model = CampusNetworkLatency(jitter_fraction=0)
    slow = model.delay(PDA, SRV, msg())
    fast = model.delay(WS, SRV, msg())
    assert slow > fast


def test_campus_size_matters():
    model = CampusNetworkLatency(jitter_fraction=0)
    small = model.delay(PDA, SRV, msg({}))
    big = model.delay(PDA, SRV, msg({"blob": "x" * 10_000}))
    assert big > small


def test_campus_jitter_deterministic_with_seed():
    a = CampusNetworkLatency(0.1, random.Random(5))
    b = CampusNetworkLatency(0.1, random.Random(5))
    assert a.delay(PDA, SRV, msg()) == b.delay(PDA, SRV, msg())


def test_campus_rejects_bad_jitter():
    with pytest.raises(ValueError):
        CampusNetworkLatency(jitter_fraction=1.0)
