"""Tests for message size estimation."""

from repro.net.message import Message, estimate_size


def test_scalar_sizes():
    assert estimate_size(None) == 1
    assert estimate_size(True) == 1
    assert estimate_size(7) == 8
    assert estimate_size(3.14) == 8


def test_string_size_counts_utf8():
    assert estimate_size("abc") == 5
    assert estimate_size("é") == 2 + 2  # two utf-8 bytes


def test_container_sizes_recursive():
    assert estimate_size([1, 2]) == 2 + 16
    assert estimate_size({"a": 1}) == 2 + (2 + 1) + 8


def test_message_size_includes_header():
    m = Message("m-1", "a", "b", "k", {})
    assert m.size_bytes == 32 + 2  # header + empty dict


def test_message_size_cached():
    m = Message("m-1", "a", "b", "k", {"x": 1})
    assert m.size_bytes == m.size_bytes


def test_bigger_payload_bigger_message():
    small = Message("1", "a", "b", "k", {"x": "hi"})
    large = Message("2", "a", "b", "k", {"x": "hi" * 100})
    assert large.size_bytes > small.size_bytes


def test_size_fixed_at_construction_despite_payload_mutation():
    # Regression for the lazy-size era: the wire size models what was
    # put on the wire, so mutating the payload afterwards (handlers do
    # reuse dicts) must not change size_bytes.
    payload = {"x": 1}
    m = Message("m-1", "a", "b", "k", payload)
    before = m.size_bytes
    payload["huge"] = "y" * 10_000
    assert m.size_bytes == before


def test_deeply_nested_payload_does_not_recurse():
    deep = {"v": 0}
    for _ in range(5_000):
        deep = {"inner": deep}
    m = Message("m-1", "a", "b", "k", deep)  # would RecursionError if recursive
    assert m.size_bytes > 5_000 * 2


def test_lazy_id_pair_formats_on_first_access():
    m = Message(("msg", 42), "a", "b", "k", {})
    assert m._msg_id is None  # not formatted yet
    assert m.msg_id == "msg-42"
    assert m._msg_id == "msg-42"  # memoized


def test_lazy_and_eager_ids_are_interchangeable():
    eager = Message("msg-7", "a", "b", "k", {"x": 1})
    lazy = Message(("msg", 7), "a", "b", "k", {"x": 1})
    assert eager.msg_id == lazy.msg_id
    assert eager.size_bytes == lazy.size_bytes


def test_dedup_fast_branch_matches_general_estimator():
    # The canonical (str, int, int) key takes an interned shortcut; it
    # must price identically to the general walk, for any sender id.
    for sender in ("a", "u00", "host-é"):
        key = (sender, 1, 42)
        with_key = Message("m-1", "a", "b", "k", {}, dedup=key)
        bare = Message("m-2", "a", "b", "k", {})
        assert with_key.size_bytes - bare.size_bytes == estimate_size(list(key))


def test_noncanonical_dedup_shapes_use_general_estimator():
    key = ("a", "weird", 1)  # str where incarnation should be
    m = Message("m-1", "a", "b", "k", {}, dedup=key)
    bare = Message("m-2", "a", "b", "k", {})
    assert m.size_bytes - bare.size_bytes == estimate_size(list(key))


def test_mixed_flat_and_nested_dicts_price_identically():
    # The flat-dict pre-scan bails to the general walk without double
    # counting; a dict that is flat except one nested value must equal
    # the sum of its parts.
    flat_part = {"a": 1, "b": "x"}
    nested = dict(flat_part)
    nested["c"] = [1, 2]
    assert estimate_size(nested) == estimate_size(flat_part) + 2 + len("c") + 2 + 16


def test_bool_and_none_sizes_survive_the_fast_scan():
    assert estimate_size({"t": True, "f": False, "n": None}) == 2 + 3 * (2 + 1 + 1)
