"""Tests for message size estimation."""

from repro.net.message import Message, estimate_size


def test_scalar_sizes():
    assert estimate_size(None) == 1
    assert estimate_size(True) == 1
    assert estimate_size(7) == 8
    assert estimate_size(3.14) == 8


def test_string_size_counts_utf8():
    assert estimate_size("abc") == 5
    assert estimate_size("é") == 2 + 2  # two utf-8 bytes


def test_container_sizes_recursive():
    assert estimate_size([1, 2]) == 2 + 16
    assert estimate_size({"a": 1}) == 2 + (2 + 1) + 8


def test_message_size_includes_header():
    m = Message("m-1", "a", "b", "k", {})
    assert m.size_bytes == 32 + 2  # header + empty dict


def test_message_size_cached():
    m = Message("m-1", "a", "b", "k", {"x": 1})
    assert m.size_bytes == m.size_bytes


def test_bigger_payload_bigger_message():
    small = Message("1", "a", "b", "k", {"x": "hi"})
    large = Message("2", "a", "b", "k", {"x": "hi" * 100})
    assert large.size_bytes > small.size_bytes
