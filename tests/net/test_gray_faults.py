"""Tests for the FaultPlan's gray-failure rules (slow/degrade/stall/skew)."""

import random

import pytest

from repro.net.address import DeviceClass, NodeAddress
from repro.net.faults import FaultPlan
from repro.net.latency import ConstantLatency
from repro.net.transport import Transport
from repro.util.errors import MessageDropped


def make_transport(latency=0.01):
    return Transport(latency=ConstantLatency(latency))


def attach(transport, node_id):
    transport.register(
        NodeAddress(node_id, DeviceClass.WORKSTATION), lambda msg: {"ok": True}
    )


class TestSlowNode:
    def test_inflates_round_trips_heavy_tailed(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        t.rpc("a", "b", "ping", {})
        clean = t.clock.now()
        t.faults.slow_node("b", rng=random.Random(3), scale=0.4, shape=1.5)
        t.rpc("a", "b", "ping", {})
        assert t.clock.now() - clean > 2 * clean

    def test_remover_restores_clean_latency(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        remove = t.faults.slow_node("b", rng=random.Random(3))
        remove()
        before = t.clock.now()
        t.rpc("a", "b", "ping", {})
        assert t.clock.now() - before == pytest.approx(0.02)

    def test_marks_plan_active(self):
        plan = FaultPlan()
        assert not plan.active
        remove = plan.slow_node("b", rng=random.Random(1))
        assert plan.active
        assert plan.slow_nodes() == {"b"}
        remove()
        assert not plan.active

    def test_draws_are_seeded(self):
        def run(seed):
            t = make_transport()
            attach(t, "a")
            attach(t, "b")
            t.faults.slow_node("b", rng=random.Random(seed))
            for _ in range(5):
                t.rpc("a", "b", "ping", {})
            return t.clock.now()

        assert run(7) == run(7)
        assert run(7) != run(8)


class TestDegradedLink:
    def test_losses_and_jitter_on_the_pair_only(self):
        t = make_transport()
        for n in ("a", "b", "c"):
            attach(t, n)
        t.faults.degrade_link("a", "b", rng=random.Random(2), loss=1.0)
        with pytest.raises(MessageDropped):
            t.rpc("a", "b", "ping", {})
        assert t.rpc("a", "c", "ping", {}) == {"ok": True}

    def test_last_registration_wins_per_pair(self):
        plan = FaultPlan()
        plan.degrade_link("a", "b", rng=random.Random(1), loss=1.0)
        plan.degrade_link("a", "b", rng=random.Random(2), loss=0.0)
        assert plan.degraded_pairs() == {frozenset(("a", "b"))}
        # The second registration replaced the first: nothing drops.
        assert not plan.gray_drop("a", "b")
        plan.degrade_link("a", "c", rng=random.Random(3), loss=0.5)
        assert plan.degraded_pairs() == {
            frozenset(("a", "b")),
            frozenset(("a", "c")),
        }

    def test_jitter_slows_the_pair(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        t.faults.degrade_link("a", "b", rng=random.Random(4), loss=0.0, jitter=0.5)
        before = t.clock.now()
        t.rpc("a", "b", "ping", {})
        assert t.clock.now() - before > 0.02


class TestStall:
    def test_replies_stall_but_handler_runs(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        t.faults.stall_node("b", delay=45.0)
        before = t.clock.now()
        assert t.rpc("a", "b", "ping", {}) == {"ok": True}
        assert t.clock.now() - before > 45.0

    def test_stalled_node_is_alive_to_reachability(self):
        plan = FaultPlan()
        plan.stall_node("b", delay=45.0)
        assert plan.reachable("a", "b")
        assert plan.stalled_nodes() == {"b"}
        assert plan.stall_delay("b") == 45.0
        assert plan.stall_delay("a") == 0.0


class TestClockSkew:
    def test_skew_recorded_and_removable(self):
        plan = FaultPlan()
        remove = plan.set_clock_skew("b", 4.5)
        assert plan.clock_skew_of("b") == 4.5
        assert plan.clock_skew_of("a") == 0.0
        remove()
        assert plan.clock_skew_of("b") == 0.0

    def test_skew_bends_lease_stamps_not_the_clock(self):
        from repro.txn.locks import LockManager
        from repro.util.clock import VirtualClock

        clock = VirtualClock()
        plan = FaultPlan()
        plan.set_clock_skew("b", -5.0)
        locks = LockManager(clock=clock, skew=lambda: plan.clock_skew_of("b"))
        assert locks.try_lock("slot", "txn-1")
        # The lease was stamped 5s in the past: it expires 5s early by
        # honest time.
        clock.advance(locks.default_lease - 4.0)
        assert locks.expired(clock.now())
        assert clock.now() == locks.default_lease - 4.0  # sim clock untouched


class TestHealGray:
    def test_heal_gray_clears_everything(self):
        plan = FaultPlan()
        plan.slow_node("b", rng=random.Random(1))
        plan.degrade_link("a", "b", rng=random.Random(2))
        plan.stall_node("c")
        plan.set_clock_skew("d", 3.0)
        assert plan.active
        plan.heal_gray()
        assert not plan.active
        assert plan.slow_nodes() == set()
        assert plan.degraded_pairs() == set()
        assert plan.stalled_nodes() == set()
        assert plan.clock_skew_of("d") == 0.0

    def test_loopback_exempt_from_gray_delay(self):
        plan = FaultPlan()
        plan.slow_node("b", rng=random.Random(1), scale=10.0)
        assert plan.gray_delay("b", "b") == 0.0
        assert not plan.gray_drop("b", "b")
