"""Tests for deadline budgets on the transport and retry paths."""

import pytest

from repro.net.address import DeviceClass, NodeAddress
from repro.net.latency import ConstantLatency
from repro.net.retry import RetryPolicy, retry_call, rpc_many_with_retry
from repro.net.transport import RpcCall, Transport
from repro.util.errors import DeadlineExceeded


def make_transport(latency=0.5):
    return Transport(latency=ConstantLatency(latency))


def attach(transport, node_id, handler=None):
    handler = handler or (lambda msg: {"echo": msg.payload})
    transport.register(NodeAddress(node_id, DeviceClass.WORKSTATION), handler)


class TestDeadlineExceededError:
    def test_message_carries_spent_and_total(self):
        err = DeadlineExceeded(1.234, 5.0, detail="phase x")
        assert "1.234" in str(err)
        assert "5.000" in str(err)
        assert "phase x" in str(err)

    def test_reconstruction_from_args_round_trips(self):
        err = DeadlineExceeded(1.2, 3.4, detail="leg")
        rebuilt = type(err)(*err.args)
        assert str(rebuilt) == str(err)

    def test_not_retryable(self):
        assert not RetryPolicy().retryable(DeadlineExceeded(0.1, 0.2))


class TestRpcDeadline:
    def test_completes_inside_budget(self):
        t = make_transport(latency=0.1)
        attach(t, "a")
        attach(t, "b")
        result = t.rpc("a", "b", "ping", {"x": 1}, deadline=t.clock.now() + 5.0)
        assert result == {"echo": {"x": 1}}

    def test_expired_budget_never_sends(self):
        t = make_transport()
        attach(t, "a")
        attach(t, "b")
        t.clock.advance(2.0)
        before = t.stats.messages
        with pytest.raises(DeadlineExceeded, match="not sent"):
            t.rpc("a", "b", "ping", {}, deadline=1.0)
        assert t.stats.messages == before

    def test_request_leg_overrun_skips_handler(self):
        t = make_transport(latency=0.5)
        ran = []
        attach(t, "a")
        attach(t, "b", handler=lambda m: ran.append(m) or {})
        with pytest.raises(DeadlineExceeded, match="request leg"):
            t.rpc("a", "b", "ping", {}, deadline=t.clock.now() + 0.3)
        assert ran == []
        # The caller stopped waiting at the deadline, not at the real delay.
        assert t.clock.now() == pytest.approx(0.3)

    def test_reply_leg_overrun_lands_side_effects(self):
        t = make_transport(latency=0.5)
        ran = []
        attach(t, "a")
        attach(t, "b", handler=lambda m: ran.append(m) or {})
        with pytest.raises(DeadlineExceeded, match="reply leg"):
            t.rpc("a", "b", "ping", {}, deadline=t.clock.now() + 0.7)
        assert len(ran) == 1
        assert t.clock.now() == pytest.approx(0.7)

    def test_clock_never_passes_deadline_under_stall(self):
        t = make_transport(latency=0.1)
        attach(t, "a")
        attach(t, "b")
        t.faults.stall_node("b", delay=45.0)
        with pytest.raises(DeadlineExceeded):
            t.rpc("a", "b", "ping", {}, deadline=t.clock.now() + 2.0)
        assert t.clock.now() == pytest.approx(2.0)

    def test_deadline_header_costs_eight_bytes(self):
        t = make_transport(latency=0.1)
        attach(t, "a")
        attach(t, "b")
        t.rpc("a", "b", "ping", {})
        plain = t.stats.bytes
        t.rpc("a", "b", "ping", {}, deadline=t.clock.now() + 50.0)
        assert t.stats.bytes - plain > 0

    def test_fast_mode_delegates_identically(self):
        def run(fast):
            t = Transport(latency=ConstantLatency(0.5), fast=fast)
            attach(t, "a")
            attach(t, "b")
            try:
                t.rpc("a", "b", "ping", {}, deadline=t.clock.now() + 0.3)
            except DeadlineExceeded as exc:
                return (t.clock.now(), str(exc), t.stats.messages)
            return None

        assert run(False) == run(True)


class TestRpcManyDeadline:
    def test_legs_past_deadline_fail_typed(self):
        t = make_transport(latency=0.5)
        attach(t, "a")
        attach(t, "b")
        attach(t, "c")
        outcomes = t.rpc_many(
            "a",
            [RpcCall("b", "ping", {}), RpcCall("c", "ping", {})],
            t.clock.now() + 0.3,
        )
        assert all(not o.ok for o in outcomes)
        assert all(isinstance(o.error, DeadlineExceeded) for o in outcomes)
        assert t.clock.now() <= 0.3 + 1e-9

    def test_inside_budget_unchanged(self):
        t = make_transport(latency=0.1)
        attach(t, "a")
        attach(t, "b")
        attach(t, "c")
        outcomes = t.rpc_many(
            "a",
            [RpcCall("b", "ping", {}), RpcCall("c", "ping", {})],
            t.clock.now() + 10.0,
        )
        assert all(o.ok for o in outcomes)


class TestRetryBudget:
    def test_retry_call_gives_up_when_budget_cannot_cover_backoff(self):
        t = make_transport(latency=0.1)
        attach(t, "a")
        attach(t, "b")
        t.faults.add_drop_rule(lambda m: m.kind == "ping")
        policy = RetryPolicy(
            max_attempts=50, base_delay=2.0, max_delay=2.0, jitter=0.0,
            sleep=lambda d: t.clock.advance(d),
        )
        deadline = t.clock.now() + 5.0
        with pytest.raises(DeadlineExceeded, match="retry budget"):
            retry_call(
                policy,
                t.stats,
                lambda: t.rpc("a", "b", "ping", {}, deadline=deadline),
                node="b",
                deadline=deadline,
                clock=t.clock,
            )
        assert t.clock.now() < 5.0

    def test_rpc_many_with_retry_stops_waves_at_budget(self):
        t = make_transport(latency=0.1)
        attach(t, "a")
        attach(t, "b")
        t.faults.add_drop_rule(lambda m: m.kind == "ping")
        policy = RetryPolicy(
            max_attempts=50, base_delay=2.0, max_delay=2.0, jitter=0.0,
            sleep=lambda d: t.clock.advance(d),
        )
        deadline = t.clock.now() + 5.0
        outcomes = rpc_many_with_retry(
            t, "a", [RpcCall("b", "ping", {})], policy, deadline=deadline
        )
        assert not outcomes[0].ok
        assert t.clock.now() < 5.0
