"""Fast-mode equivalence: ``fast=True`` may only change wall-clock time.

The contract (DESIGN.md §5.11): a fast-mode world produces *identical*
observables to a default one — byte-identical chaos episode logs, equal
``StatsSnapshot``s, equal virtual-clock end times, identical message
ids — under every chaos profile and with tracing both on and off. With
tracing off and no faults armed the fast bindings actually execute; with
tracing on (or faults active) they must fall back to the default path
without changing anything either.
"""

import pytest

from repro.calendar.app import SyDCalendarApp
from repro.chaos.campaign import ChaosCampaign, ChaosConfig
from repro.chaos.schedule import PROFILES
from repro.world import SyDWorld


def _episode(profile: str, fast: bool, tracing: bool):
    cfg = ChaosConfig(
        seed=7,
        episodes=1,
        users=4,
        ops=12,
        duration=60.0,
        profile=profile,
        shrink=False,
        tracing=tracing,
        fast=fast,
    )
    campaign = ChaosCampaign(cfg)
    episode = campaign.run_episode(0, quiet=True)
    world = campaign.last_world
    return episode, world.transport.stats.snapshot(), world.clock.now()


class TestChaosEpisodeEquivalence:
    @pytest.mark.parametrize("profile", sorted(PROFILES))
    @pytest.mark.parametrize("tracing", (True, False), ids=("tracing", "no-tracing"))
    def test_episode_is_identical_fast_vs_default(self, profile, tracing):
        default_ep, default_stats, default_clock = _episode(profile, False, tracing)
        fast_ep, fast_stats, fast_clock = _episode(profile, True, tracing)
        # Byte-identical episode logs: same ops, same fault injections,
        # same retries/dups/recoveries, same final counters.
        assert fast_ep.log == default_ep.log
        assert fast_stats == default_stats
        assert fast_clock == default_clock
        assert fast_ep.violations == default_ep.violations


def _negotiation_run(fast: bool, tracing: bool):
    world = SyDWorld(seed=11, tracing=tracing, fast=fast)
    app = SyDCalendarApp(world)
    users = ("a", "b", "c", "d")
    for user in users:
        app.add_user(user)
    first = app.manager("a").schedule_meeting("m1", ["b", "c"])
    app.manager("b").schedule_meeting("m2", ["c", "d"])
    if first is not None:
        app.manager("a").cancel_meeting(first.meeting_id)
    return world.transport.stats.snapshot(), world.clock.now(), world


class TestNegotiationEquivalence:
    @pytest.mark.parametrize("tracing", (True, False), ids=("tracing", "no-tracing"))
    def test_negotiation_scenario_is_identical(self, tracing):
        default_stats, default_clock, _ = _negotiation_run(False, tracing)
        fast_stats, fast_clock, _ = _negotiation_run(True, tracing)
        assert fast_stats == default_stats
        assert fast_clock == default_clock

    def test_fast_world_moves_real_traffic(self):
        stats, clock_end, world = _negotiation_run(True, False)
        assert stats.messages > 0
        assert clock_end > 0
        assert world.transport.fast is True
        # The fast bindings are instance attributes shadowing the class
        # methods (bound once at construction, no per-call mode branch).
        assert "rpc" in vars(world.transport)


class TestFastBindingFallback:
    def test_enabling_tracing_midway_falls_back_per_call(self):
        """The binding is construction-time but the *eligibility* is
        per-call: flipping the tracer on routes through the default path
        and produces spans, flipping it off re-engages the cheap one."""
        world = SyDWorld(seed=3, tracing=False, fast=True)
        app = SyDCalendarApp(world)
        app.add_user("a")
        app.add_user("b")
        app.manager("a").schedule_meeting("m1", ["b"])
        assert world.tracer.spans() == []
        world.tracer.enabled = True
        app.manager("b").schedule_meeting("m2", ["a"])
        assert len(world.tracer.spans()) > 0
