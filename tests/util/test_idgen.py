"""Tests for deterministic id generation."""

from repro.util.idgen import IdGenerator


def test_ids_are_sequential_per_prefix():
    gen = IdGenerator()
    assert gen.next("link") == "link-1"
    assert gen.next("link") == "link-2"
    assert gen.next("msg") == "msg-1"
    assert gen.next("link") == "link-3"


def test_two_generators_are_independent():
    a, b = IdGenerator(), IdGenerator()
    a.next("x")
    assert b.next("x") == "x-1"


def test_peek_reports_issued_count():
    gen = IdGenerator()
    assert gen.peek("m") == 0
    gen.next("m")
    gen.next("m")
    assert gen.peek("m") == 2


def test_reset_single_prefix():
    gen = IdGenerator()
    gen.next("a")
    gen.next("b")
    gen.reset("a")
    assert gen.next("a") == "a-1"
    assert gen.next("b") == "b-2"


def test_reset_all():
    gen = IdGenerator()
    gen.next("a")
    gen.next("b")
    gen.reset()
    assert gen.next("a") == "a-1"
    assert gen.next("b") == "b-1"


def test_next_num_returns_integers():
    gen = IdGenerator()
    assert gen.next_num("msg") == 1
    assert gen.next_num("msg") == 2


def test_next_and_next_num_share_one_counter():
    # The transport's fast path draws raw numbers while slower code
    # draws formatted ids; both must advance the same sequence.
    gen = IdGenerator()
    assert gen.next("msg") == "msg-1"
    assert gen.next_num("msg") == 2
    assert gen.next("msg") == "msg-3"
    assert gen.peek("msg") == 3
