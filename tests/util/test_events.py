"""Tests for the intra-node event bus."""

import pytest

from repro.util.events import EventBus, topic_matches


class TestTopicMatching:
    def test_exact_match(self):
        assert topic_matches("store.insert", "store.insert")

    def test_exact_mismatch(self):
        assert not topic_matches("store.insert", "store.update")

    def test_star_matches_everything(self):
        assert topic_matches("*", "anything.at.all")

    def test_trailing_star_matches_subtopics(self):
        assert topic_matches("store.*", "store.insert")
        assert topic_matches("store.*", "store.row.update")

    def test_trailing_star_does_not_match_other_prefix(self):
        assert not topic_matches("store.*", "link.insert")

    def test_pattern_longer_than_topic(self):
        assert not topic_matches("a.b.c", "a.b")

    def test_topic_longer_than_exact_pattern(self):
        assert not topic_matches("a.b", "a.b.c")


class TestEventBus:
    def test_publish_reaches_subscriber(self):
        bus = EventBus()
        seen = []
        bus.subscribe("greet", lambda t, p: seen.append((t, p)))
        n = bus.publish("greet", who="world")
        assert n == 1
        assert seen == [("greet", {"who": "world"})]

    def test_publish_counts_multiple_subscribers(self):
        bus = EventBus()
        bus.subscribe("t", lambda t, p: None)
        bus.subscribe("t", lambda t, p: None)
        bus.subscribe("other", lambda t, p: None)
        assert bus.publish("t") == 2

    def test_wildcard_subscription(self):
        bus = EventBus()
        seen = []
        bus.subscribe("store.*", lambda t, p: seen.append(t))
        bus.publish("store.insert")
        bus.publish("store.delete")
        bus.publish("link.create")
        assert seen == ["store.insert", "store.delete"]

    def test_unsubscribe_stops_delivery(self):
        bus = EventBus()
        seen = []
        unsub = bus.subscribe("t", lambda t, p: seen.append(t))
        bus.publish("t")
        unsub()
        bus.publish("t")
        assert seen == ["t"]
        assert bus.subscriber_count() == 0

    def test_unsubscribe_twice_is_harmless(self):
        bus = EventBus()
        unsub = bus.subscribe("t", lambda t, p: None)
        unsub()
        unsub()

    def test_handler_exception_propagates(self):
        bus = EventBus()

        def boom(topic, payload):
            raise RuntimeError("handler bug")

        bus.subscribe("t", boom)
        with pytest.raises(RuntimeError):
            bus.publish("t")

    def test_handler_may_subscribe_during_publish(self):
        bus = EventBus()
        seen = []

        def first(topic, payload):
            bus.subscribe("t", lambda t, p: seen.append("late"))
            seen.append("first")

        bus.subscribe("t", first)
        bus.publish("t")
        # The late subscriber must not receive the in-flight event.
        assert seen == ["first"]
        bus.publish("t")
        assert "late" in seen
