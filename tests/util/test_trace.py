"""Tests for the execution tracer."""

import pytest

from repro.util.clock import VirtualClock
from repro.util.trace import Tracer


def test_record_and_read_back():
    tracer = Tracer()
    tracer.record("A", "mark", slot=3)
    tracer.record("B", "lock")
    events = tracer.events()
    assert len(events) == 2
    assert events[0].actor == "A"
    assert events[0].step == "mark"
    assert events[0].detail == {"slot": 3}


def test_timestamps_come_from_clock():
    clock = VirtualClock()
    tracer = Tracer(clock)
    tracer.record("A", "one")
    clock.advance(2.0)
    tracer.record("A", "two")
    ts = [e.t for e in tracer.events()]
    assert ts == [0.0, 2.0]


def test_steps_compact_view():
    tracer = Tracer()
    tracer.record("A", "mark")
    tracer.record("B", "change")
    assert tracer.steps() == [("A", "mark"), ("B", "change")]


def test_filter_by_actor_and_step():
    tracer = Tracer()
    tracer.record("A", "mark")
    tracer.record("B", "mark")
    tracer.record("A", "change")
    assert len(tracer.filter(actor="A")) == 2
    assert len(tracer.filter(step="mark")) == 2
    assert len(tracer.filter(actor="A", step="mark")) == 1


def test_disabled_tracer_records_nothing():
    tracer = Tracer()
    tracer.enabled = False
    tracer.record("A", "mark")
    assert tracer.events() == []


def test_clear():
    tracer = Tracer()
    tracer.record("A", "mark")
    tracer.clear()
    assert tracer.events() == []


def test_assert_order_accepts_subsequence():
    tracer = Tracer()
    for actor, step in [("A", "mark"), ("B", "mark"), ("B", "lock"), ("A", "change")]:
        tracer.record(actor, step)
    tracer.assert_order([("A", "mark"), ("A", "change")])


def test_assert_order_rejects_wrong_order():
    tracer = Tracer()
    tracer.record("A", "change")
    tracer.record("A", "mark")
    with pytest.raises(AssertionError):
        tracer.assert_order([("A", "mark"), ("A", "change")])


def test_assert_order_rejects_missing_step():
    tracer = Tracer()
    tracer.record("A", "mark")
    with pytest.raises(AssertionError):
        tracer.assert_order([("A", "unlock")])
