"""Tests for the execution tracer."""

import pytest

from repro.util.clock import VirtualClock
from repro.util.trace import Tracer


def test_record_and_read_back():
    tracer = Tracer()
    tracer.record("A", "mark", slot=3)
    tracer.record("B", "lock")
    events = tracer.events()
    assert len(events) == 2
    assert events[0].actor == "A"
    assert events[0].step == "mark"
    assert events[0].detail == {"slot": 3}


def test_timestamps_come_from_clock():
    clock = VirtualClock()
    tracer = Tracer(clock)
    tracer.record("A", "one")
    clock.advance(2.0)
    tracer.record("A", "two")
    ts = [e.t for e in tracer.events()]
    assert ts == [0.0, 2.0]


def test_steps_compact_view():
    tracer = Tracer()
    tracer.record("A", "mark")
    tracer.record("B", "change")
    assert tracer.steps() == [("A", "mark"), ("B", "change")]


def test_filter_by_actor_and_step():
    tracer = Tracer()
    tracer.record("A", "mark")
    tracer.record("B", "mark")
    tracer.record("A", "change")
    assert len(tracer.filter(actor="A")) == 2
    assert len(tracer.filter(step="mark")) == 2
    assert len(tracer.filter(actor="A", step="mark")) == 1


def test_disabled_tracer_records_nothing():
    tracer = Tracer()
    tracer.enabled = False
    tracer.record("A", "mark")
    assert tracer.events() == []


def test_clear():
    tracer = Tracer()
    tracer.record("A", "mark")
    tracer.clear()
    assert tracer.events() == []


def test_assert_order_accepts_subsequence():
    tracer = Tracer()
    for actor, step in [("A", "mark"), ("B", "mark"), ("B", "lock"), ("A", "change")]:
        tracer.record(actor, step)
    tracer.assert_order([("A", "mark"), ("A", "change")])


def test_assert_order_rejects_wrong_order():
    tracer = Tracer()
    tracer.record("A", "change")
    tracer.record("A", "mark")
    with pytest.raises(AssertionError):
        tracer.assert_order([("A", "mark"), ("A", "change")])


def test_assert_order_rejects_missing_step():
    tracer = Tracer()
    tracer.record("A", "mark")
    with pytest.raises(AssertionError):
        tracer.assert_order([("A", "unlock")])


def test_assert_order_failure_truncates_large_traces():
    # Satellite fix: a failing assert_order on a big trace used to dump
    # every step into the exception message. Past _DUMP_LIMIT steps the
    # dump now shows head + tail with an omission marker, and names the
    # index where subsequence matching stalled.
    tracer = Tracer()
    for i in range(100):
        tracer.record("A", f"step{i}")
    with pytest.raises(AssertionError) as exc:
        tracer.assert_order([("A", "step5"), ("A", "nope")])
    msg = str(exc.value)
    assert "steps omitted" in msg
    assert "last matched step at index 5" in msg
    # Head and tail survive; the middle does not.
    assert "step0" in msg and "step99" in msg
    assert "('A', 'step50')" not in msg


def test_assert_order_failure_small_trace_dumps_everything():
    tracer = Tracer()
    for i in range(5):
        tracer.record("A", f"step{i}")
    with pytest.raises(AssertionError) as exc:
        tracer.assert_order([("A", "nope")])
    msg = str(exc.value)
    assert "steps omitted" not in msg
    assert "last matched step at index -1" in msg


# -- span layer --------------------------------------------------------------


def test_spans_nest_and_share_a_trace_id():
    clock = VirtualClock()
    tracer = Tracer(clock)
    with tracer.span("outer", "n1", op=1) as outer:
        clock.advance(1.0)
        with tracer.span("inner", "n1") as inner:
            clock.advance(0.5)
    spans = tracer.spans()
    assert [s.name for s in spans] == ["outer", "inner"]
    assert inner.trace_id == outer.trace_id
    assert inner.parent_id == outer.span_id
    assert outer.parent_id is None
    assert outer.start == 0.0 and outer.end == 1.5
    assert inner.start == 1.0 and inner.end == 1.5
    assert outer.attrs == {"op": 1}


def test_sibling_roots_get_fresh_trace_ids():
    tracer = Tracer()
    with tracer.span("a", "n"):
        pass
    with tracer.span("b", "n"):
        pass
    ids = [s.trace_id for s in tracer.spans()]
    assert len(set(ids)) == 2


def test_exception_marks_span_status():
    tracer = Tracer()
    with pytest.raises(ValueError):
        with tracer.span("boom", "n"):
            raise ValueError("x")
    (span,) = tracer.spans()
    assert span.status == "ValueError"
    assert span.end is not None


def test_disabled_tracer_pushes_null_spans_balanced():
    tracer = Tracer()
    tracer.enabled = False
    with tracer.span("outer", "n") as span:
        span.set(ignored=True)  # NULL_SPAN tolerates set()
        with tracer.span("inner", "n"):
            pass
    assert tracer.spans() == []
    assert tracer.current_context() is None


def test_sampling_suppresses_whole_subtrees():
    tracer = Tracer(sample=2)
    for i in range(4):
        with tracer.span("root", "n", i=i):
            with tracer.span("child", "n"):
                pass
    spans = tracer.spans()
    # Roots 0 and 2 recorded (with their children); 1 and 3 fully null.
    assert [s.attrs.get("i") for s in spans if s.name == "root"] == [0, 2]
    assert sum(1 for s in spans if s.name == "child") == 2


def test_activate_reparents_under_remote_context():
    tracer = Tracer()
    with tracer.span("local", "n") as caller:
        ctx = tracer.current_context()
    remote = Tracer()
    with remote.activate(ctx):
        with remote.span("handler", "m") as handler:
            pass
    assert handler.trace_id == caller.trace_id
    assert handler.parent_id == caller.span_id
    # activate(None) is a passthrough.
    with remote.activate(None):
        with remote.span("rootish", "m") as span:
            pass
    assert span.parent_id is None


def test_detached_blocks_start_fresh_roots():
    tracer = Tracer()
    with tracer.span("op", "n"):
        with tracer.detached():
            with tracer.span("sweep", "n") as sweep:
                pass
        assert tracer.current_span_id() is not None
    assert sweep.parent_id is None
