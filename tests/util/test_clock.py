"""Tests for the virtual clock."""

import pytest

from repro.util.clock import VirtualClock


def test_starts_at_zero_by_default():
    assert VirtualClock().now() == 0.0


def test_starts_at_given_time():
    assert VirtualClock(5.5).now() == 5.5


def test_negative_start_rejected():
    with pytest.raises(ValueError):
        VirtualClock(-1.0)


def test_advance_accumulates():
    clock = VirtualClock()
    clock.advance(1.5)
    clock.advance(0.5)
    assert clock.now() == pytest.approx(2.0)


def test_advance_zero_is_allowed():
    clock = VirtualClock(3.0)
    clock.advance(0.0)
    assert clock.now() == 3.0


def test_advance_negative_rejected():
    clock = VirtualClock()
    with pytest.raises(ValueError):
        clock.advance(-0.1)


def test_advance_to_moves_forward():
    clock = VirtualClock()
    clock.advance_to(10.0)
    assert clock.now() == 10.0


def test_advance_to_same_time_is_noop():
    clock = VirtualClock(4.0)
    clock.advance_to(4.0)
    assert clock.now() == 4.0


def test_advance_to_past_rejected():
    clock = VirtualClock(4.0)
    with pytest.raises(ValueError):
        clock.advance_to(3.9)
