#!/usr/bin/env python
"""Quorum scheduling — the paper's second §5 example.

"Suppose A wants to schedule a meeting with a quorum of 50% among the
faculty of Biology and at least two faculties from Physics and, in
addition, B and C are must attendees."

Composes one atomic multi-group negotiation: AND over the must-attendees,
at-least-k over each department. Also demonstrates the §5 drop-out rule:
a Biology member may only leave if the quorum survives or a replacement
commits.

Run: ``python examples/quorum_scheduling.py``
"""

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp
from repro.calendar.model import OrGroup


def main() -> None:
    world = SyDWorld(seed=13)
    app = SyDCalendarApp(world)

    biology = [f"bio{i}" for i in range(1, 7)]      # 6 biologists
    physics = [f"phy{i}" for i in range(1, 5)]      # 4 physicists
    for user in ["alice", "bob", "carol", *biology, *physics]:
        app.add_user(user)

    # Half of Biology is busy on day 0 morning; the constraint solver
    # must still find a quorum.
    for user in biology[:3]:
        app.service(user).block({"day": 0, "hour": 9})

    meeting = app.manager("alice").schedule_meeting(
        "Faculty senate",
        ["bob", "carol", *biology, *physics],
        must_attend=["bob", "carol"],
        or_groups=[
            OrGroup(tuple(biology), k=3),   # 50% of 6 biologists
            OrGroup(tuple(physics), k=2),   # at least two physicists
        ],
    )
    print(f"meeting: {meeting.status.value} at day {meeting.slot['day']} "
          f"{meeting.slot['hour']}:00")
    bio_in = [u for u in meeting.committed if u.startswith("bio")]
    phy_in = [u for u in meeting.committed if u.startswith("phy")]
    print(f"  biologists committed : {len(bio_in)}/{len(biology)} {bio_in}")
    print(f"  physicists committed : {len(phy_in)}/{len(physics)} {phy_in}")
    print(f"  must-attendees       : bob={'bob' in meeting.committed}, "
          f"carol={'carol' in meeting.committed}")

    # --- drop-out governance (§5's cancellation rule) ---------------------
    leaver = bio_in[0]
    granted = app.manager(leaver).drop_out(meeting.meeting_id)
    after = app.meeting_view("alice", meeting.meeting_id)
    print(f"\n{leaver} asks to leave: granted={granted} "
          f"(quorum {'holds' if granted else 'would break'})")
    print(f"  biologists now: {[u for u in after.committed if u.startswith('bio')]}")

    # Keep pulling biologists out until the quorum would break.
    for candidate in [u for u in after.committed if u.startswith("bio")]:
        granted = app.manager(candidate).drop_out(meeting.meeting_id)
        print(f"{candidate} asks to leave: granted={granted}")
        if not granted:
            break


if __name__ == "__main__":
    main()
