#!/usr/bin/env python
"""The other two SyD applications of Figure 2: SyDFleet and the
price-is-right bidding game.

Both reuse the same kernel the calendar runs on — group invocation with
aggregation, subscription links, and negotiation transactions — which is
the paper's rapid-application-development claim in action.

Run: ``python examples/fleet_and_bidding.py``
"""

from repro import SyDWorld
from repro.apps.bidding import build_game
from repro.apps.fleet import build_fleet


def fleet_demo() -> None:
    print("=== SyDFleet ===")
    world = SyDWorld(seed=31)
    dispatcher, trucks = build_fleet(world, ["truck-a", "truck-b", "truck-c"])

    trucks["truck-a"].move_to(2, 3)
    trucks["truck-b"].move_to(9, 9)
    trucks["truck-c"].move_to(1, 1)

    positions = dispatcher.fleet_positions()
    print(f"fleet positions (one group invocation): "
          f"{ {t: (p['x'], p['y']) for t, p in positions.items()} }")
    print(f"nearest free truck to depot (0,0): {dispatcher.nearest_free(0, 0)}")

    ok = dispatcher.assign_convoy(["truck-a", "truck-c"], "route-66", cargo="steel")
    print(f"convoy assignment (atomic negotiation-and): {ok}")
    print(f"  truck-a: {trucks['truck-a'].position()['route']}, "
          f"truck-b: {trucks['truck-b'].position()['route']}")

    # Atomicity: one busy truck vetoes the whole convoy.
    ok = dispatcher.assign_convoy(["truck-a", "truck-b"], "route-1")
    print(f"second convoy with busy truck-a: {ok} "
          f"(truck-b untouched: {trucks['truck-b'].position()['status']})")


def bidding_demo() -> None:
    print("\n=== Price-is-right bidding ===")
    world = SyDWorld(seed=32)
    referee, players = build_game(world, ["ann", "ben", "cy"])

    players["ann"].place_bid("round-1", 45)
    players["ben"].place_bid("round-1", 72)
    players["cy"].place_bid("round-1", 130)   # over the price

    outcome = referee.run_round("round-1", secret_price=100.0, item="toaster")
    print(f"round 1 (price 100): winner={outcome['winner']} "
          f"at {outcome['bid']} ({outcome['reason']})")
    print(f"  ben's wins: {players['ben'].wins()}")

    # A tie makes the XOR award abort: nobody wins, re-bid.
    players["ann"].place_bid("round-2", 60)
    players["ben"].place_bid("round-2", 60)
    outcome = referee.run_round("round-2", secret_price=100.0, item="tv")
    print(f"round 2 tie at 60: {outcome['reason']} (winner={outcome['winner']})")


if __name__ == "__main__":
    fleet_demo()
    bidding_demo()
