#!/usr/bin/env python
"""Quickstart: three users, one meeting, one cancellation.

The smallest complete SyD calendar session — the paper's §3.2 example of
``Calendars_of_phil+andy+suzy_SyDAppO``.

Run: ``python examples/quickstart.py``
"""

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp


def main() -> None:
    # One simulated world: virtual clock, campus network, SyDDirectory.
    world = SyDWorld(seed=42)
    app = SyDCalendarApp(world)

    # Each user gets a device node, a per-device store, the SyD Kernel
    # stack, and a published calendar service.
    for user in ["phil", "andy", "suzy"]:
        app.add_user(user)

    # Phil books a meeting: common free slots are discovered by a group
    # invocation + intersection, then reserved atomically through a
    # negotiation-and link (§4.3).
    meeting = app.manager("phil").schedule_meeting(
        "Budget review", ["andy", "suzy"], day_from=0, day_to=2
    )
    print(f"Scheduled {meeting.meeting_id!r}: {meeting.status.value}")
    print(f"  slot: day {meeting.slot['day']}, {meeting.slot['hour']}:00")
    print(f"  committed: {meeting.committed}")

    # Every participant's own calendar now holds the reservation — and
    # only their own data (no replicated folders).
    for user in ["phil", "andy", "suzy"]:
        row = app.calendar(user).slot_of(meeting.slot)
        print(f"  {user}: slot status={row['status']}, meeting={row['meeting_id']}")

    # E-mail notifications went out automatically.
    print(f"mail sent: {app.mail.sent}, human actions required: {app.mail.action_required}")

    # Cancellation follows §4.4: links cascade away, slots free up
    # everywhere, everyone is notified — no manual deleting.
    app.manager("phil").cancel_meeting(meeting.meeting_id)
    print(f"after cancel: andy's slot is "
          f"{app.calendar('andy').slot_of(meeting.slot)['status']}")

    print(f"simulated time elapsed: {world.now:.3f}s, "
          f"messages exchanged: {world.stats.messages}")


if __name__ == "__main__":
    main()
