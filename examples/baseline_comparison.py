#!/usr/bin/env python
"""The §6 comparison, live: SyD vs the replicated e-mail workflow.

Runs the same meeting workload through the SyD calendar and the
"current practice" baseline (full folder replication + manual e-mail
accepts), then prints the §6 claims as measured numbers.

Run: ``python examples/baseline_comparison.py``
"""

from repro.baselines.replicated import ReplicatedCalendarBaseline
from repro.bench.metrics import format_table
from repro.bench.workloads import build_calendar_population, meeting_request_stream
from repro.calendar.model import MeetingStatus
from repro.util.errors import SchedulingError

N_USERS = 8
N_MEETINGS = 6


def run_syd():
    app = build_calendar_population(N_USERS, seed=51, occupancy=0.25)
    users = sorted(app.users)
    confirmed = 0
    meetings = []
    for req in meeting_request_stream(users, N_MEETINGS, seed=51, group_size=3):
        try:
            m = app.manager(req.initiator).schedule_meeting(
                req.title, list(req.participants)
            )
            meetings.append((req.initiator, m))
            confirmed += m.status is MeetingStatus.CONFIRMED
        except SchedulingError:
            pass
    # Cancel one meeting: SyD cleans up and promotes automatically.
    initiator, m = meetings[0]
    app.manager(initiator).cancel_meeting(m.meeting_id)
    return [
        "SyD",
        f"{confirmed}/{N_MEETINGS}",
        app.world.stats.messages + app.mail.sent,
        app.mail.action_required,
        max(app.total_storage_bytes().values()),
    ]


def run_replicated():
    import random

    system = ReplicatedCalendarBaseline()
    users = [f"u{i:03d}" for i in range(N_USERS)]
    for u in users:
        system.add_user(u)
    rng = random.Random(51)
    for u in users:
        for d in range(5):
            for h in range(9, 17):
                if rng.random() < 0.25:
                    system.block(u, d, h)
    system.sync_replicas()
    confirmed = 0
    cancelled = None
    for req in meeting_request_stream(users, N_MEETINGS, seed=51, group_size=3):
        mid, _ = system.schedule_meeting_full_cycle(
            req.initiator, req.title, list(req.participants)
        )
        if mid:
            confirmed += 1
            cancelled = cancelled or (req.initiator, mid)
    if cancelled:
        system.cancel_meeting(*cancelled)
        for u in users:
            system.process_cancellation(u)
    return [
        "replicated + e-mail",
        f"{confirmed}/{N_MEETINGS}",
        system.mail.sent + system.replication_messages,
        system.manual_interventions,
        max(system.storage_bytes(u) for u in users),
    ]


def main() -> None:
    rows = [run_syd(), run_replicated()]
    print(
        format_table(
            "SyD vs current practice (paper §6, measured)",
            ["system", "confirmed", "messages", "manual steps", "max bytes/user"],
            rows,
        )
    )
    print(
        "\nNote on storage: SyD per-user bytes are flat in the population size;\n"
        "the replicated design grows linearly (run `python -m repro.bench.harness\n"
        "--exp E8B` to see the crossover)."
    )


if __name__ == "__main__":
    main()
