#!/usr/bin/env python
"""Heterogeneity: the same application over three store kinds (paper §2).

"Each individual device in SyD may be a traditional database ... or may
be an ad-hoc data store such as a flat file ... or a list repository."

The calendar below runs unchanged with phil on a relational store, andy
on a flat file, and suzy on a list repository — plus §5.4 authentication
(TEA-encrypted credentials checked against each store's own
authorized-user table).

Run: ``python examples/heterogeneous_stores.py``
"""

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp
from repro.util.errors import AuthenticationError


def main() -> None:
    world = SyDWorld(seed=17, auth_passphrase="campus-wlan-secret")
    app = SyDCalendarApp(world)

    app.add_user("phil", store_kind="relational", password="pw-phil")
    app.add_user("andy", store_kind="flatfile", password="pw-andy")
    app.add_user("suzy", store_kind="list", password="pw-suzy")

    for user in ["phil", "andy", "suzy"]:
        print(f"{user}: store kind = {app.node(user).store.kind}")

    # Mutual authorization: each device's own syd_users table (§5.4).
    # (Including oneself: even a self-invocation crosses the network.)
    for owner in ["phil", "andy", "suzy"]:
        for peer in ["phil", "andy", "suzy"]:
            app.node(owner).auth_table.grant(peer, f"pw-{peer}")

    meeting = app.manager("phil").schedule_meeting("Cross-store sync", ["andy", "suzy"])
    print(f"\nmeeting {meeting.status.value} at {meeting.slot} across all three stores")
    for user in ["phil", "andy", "suzy"]:
        row = app.calendar(user).slot_of(meeting.slot)
        print(f"  {user} ({app.node(user).store.kind}): {row['status']}")

    # The flat-file store really is text underneath:
    dump = app.node("andy").store.dump("slots")
    print(f"\nandy's flat file, first lines:\n  " + "\n  ".join(dump.splitlines()[:4]))

    # An unauthorized outsider is rejected by TEA-authenticated dispatch.
    mallory = world.add_node("mallory", password="pw-mallory")
    try:
        mallory.engine.execute("phil", "calendar", "query_free_slots", 0, 1)
    except AuthenticationError as exc:
        print(f"\nmallory rejected: {exc}")


if __name__ == "__main__":
    main()
