#!/usr/bin/env python
"""Mobility: proxies and the name server (paper §5.2).

"If a SyD calendar object A is down or disconnected, a proxy takes over
the place of A. Once A comes back up, A takes over the proxy. The proxy
and the SyD object act as a single entity for an outsider."

Demonstrates: name-server proxy assignment, enrollment with a store
snapshot, engine failover when the device powers off, proxy-side writes,
and journal replay at handback.

Run: ``python examples/mobile_proxy.py``
"""

from repro import SyDWorld
from repro.device.resource import ResourceObject
from repro.kernel.listener import SyDListener
from repro.net.address import DeviceClass, NodeAddress
from repro.proxy.device import ProxiedDevice
from repro.proxy.nameserver import NameServerService
from repro.proxy.proxy import ProxyHost
from repro.util.errors import UnreachableError


def main() -> None:
    world = SyDWorld(seed=21)

    # --- infrastructure: name server + one proxy host ---------------------
    nameserver = NameServerService()
    ns_listener = SyDListener("syd-nameserver")
    ns_listener.publish_object(nameserver)
    world.transport.register(
        NodeAddress("syd-nameserver", DeviceClass.SERVER),
        lambda msg: ns_listener.handle_invoke(msg),
    )
    proxy = ProxyHost("proxy-1", world.transport, nameserver_node="syd-nameserver")
    proxy.register_factory(
        "resource", lambda user, store: ResourceObject(f"{user}_res", store)
    )

    # --- phil's iPAQ -------------------------------------------------------
    phil = world.add_node("phil")
    obj = ResourceObject("phil_res", phil.store, phil.locks)
    phil.listener.publish_object(obj, user_id="phil", service="res")
    obj.add("todo-1", value={"text": "buy milk"})

    device = ProxiedDevice(phil, "syd-nameserver")
    device.export_service("res", "phil_res", "resource")
    assigned = device.attach()
    print(f"name server assigned proxy: {assigned}")

    caller = world.add_node("caller")

    # --- device up: direct invocation --------------------------------------
    row = caller.engine.execute("phil", "res", "read", "todo-1")
    print(f"device up  -> read via device: {row['value']}")

    # --- device down: the proxy answers transparently ----------------------
    world.take_down("phil")
    row = caller.engine.execute("phil", "res", "read", "todo-1")
    print(f"device DOWN -> read via proxy : {row['value']} "
          f"(proxy fallbacks: {caller.engine.proxy_fallbacks})")

    # Writes while down are journaled at the proxy.
    caller.engine.execute("phil", "res", "set_status", "todo-1", "done")
    print(f"write accepted by proxy; journal length: "
          f"{len(proxy.session('phil').journal)}")

    # --- handback: A takes over from the proxy ------------------------------
    world.bring_up("phil")
    replayed = device.reconnect()
    print(f"device back -> replayed {replayed} proxy write(s); "
          f"device now says: {phil.store.get('resources', 'todo-1')['status']}")

    # --- contrast: without a proxy the device is simply gone ----------------
    phil.directory.set_proxy("phil", None)
    world.take_down("phil")
    try:
        caller.engine.execute("phil", "res", "read", "todo-1")
    except UnreachableError as exc:
        print(f"without a proxy: {type(exc).__name__}: {exc}")


if __name__ == "__main__":
    main()
