#!/usr/bin/env python
"""Regenerate the paper's figure-like artifacts from a live run.

Figures 1–4 of the paper are diagrams. This script produces their
execution-derived equivalents:

* a **message sequence diagram** of one meeting setup (Figure 3's
  "interactions between modules and application objects"),
* the **coordination-link topology** after the §5 scenario, as both an
  ASCII listing and Graphviz DOT (Figures 1/4's link structures).

Run: ``python examples/figure_artifacts.py``
"""

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp
from repro.tools.linkgraph import collect_edges, link_census, to_dot, to_text
from repro.tools.sequence import MessageRecorder


def main() -> None:
    world = SyDWorld(seed=71)
    app = SyDCalendarApp(world)
    for user in ["A", "B", "C"]:
        app.add_user(user)

    # C is busy so the scenario produces the full §5 link menagerie:
    # forward + back-subscription + tentative links.
    for row in app.calendar("C").free_slots(0, 4):
        app.service("C").block({"day": row["day"], "hour": row["hour"]})

    recorder = MessageRecorder.attach(world.transport)
    meeting = app.manager("A").schedule_meeting("Design review", ["B", "C"])
    recorder.detach()

    print("=== Message sequence of the meeting setup (first 18 requests) ===\n")
    print(recorder.to_diagram(max_rows=18))
    summary = recorder.summary()
    print(f"\n({summary['total']} message legs total; "
          f"kinds: {summary['by_kind']})")

    print("\n=== Coordination-link topology after setup "
          f"(meeting is {meeting.status.value}) ===\n")
    edges = collect_edges(world)
    print(to_text(edges))
    print(f"\ncensus: {link_census(world)}")

    print("\n=== Graphviz DOT (pipe into `dot -Tpng`) ===\n")
    print(to_dot(edges, title="SyD links after the §5 scenario"))


if __name__ == "__main__":
    main()
