#!/usr/bin/env python
"""The full §5 meeting lifecycle, step by step.

Reproduces the paper's running scenario:

1. A (phil) calls a meeting with B, C, D — but C is unavailable, so the
   meeting is set up *tentatively*: available folks hold their slots, C
   gets a tentative back link queued at their slot, the others get
   subscription back links to A.
2. C's slot frees → the tentative link fires → A re-negotiates → the
   meeting converts to confirmed automatically.
3. A higher-priority meeting bumps one participant → the meeting is
   bumped and automatically rescheduled (§6).

Run: ``python examples/meeting_lifecycle.py``
"""

from repro import SyDWorld
from repro.calendar.app import SyDCalendarApp


def show(app, label, meeting_id):
    m = app.meeting_view("phil", meeting_id)
    print(f"[{label}] {meeting_id}: status={m.status.value}, "
          f"committed={m.committed}, missing={m.missing}")


def main() -> None:
    world = SyDWorld(seed=7)
    app = SyDCalendarApp(world)
    for user in ["phil", "andy", "suzy", "raj", "boss"]:
        app.add_user(user)

    # --- Step 1: C (suzy) is fully booked; scheduling goes tentative ------
    for row in app.calendar("suzy").free_slots(0, 4):
        app.service("suzy").block({"day": row["day"], "hour": row["hour"]})

    meeting = app.manager("phil").schedule_meeting(
        "Design sync", ["andy", "suzy", "raj"]
    )
    show(app, "after schedule", meeting.meeting_id)
    links_at_suzy = app.node("suzy").links.all_links()
    print(f"  suzy's queued link: {links_at_suzy[0].subtype.value} "
          f"{links_at_suzy[0].context['role']}")

    # --- Step 2: C frees the slot; the link machinery does the rest ------
    app.service("suzy").unblock(meeting.slot)
    show(app, "after suzy frees the slot", meeting.meeting_id)
    print(f"  suzy's slot: {app.calendar('suzy').slot_of(meeting.slot)['status']}")

    # Suzy also frees the next hour — the landing zone for step 3's
    # automatic reschedule.
    app.service("suzy").unblock({"day": 0, "hour": meeting.slot["hour"] + 1})

    # --- Step 3: the boss bumps the meeting with higher priority ---------
    exec_meeting = app.manager("boss").schedule_meeting(
        "Emergency exec", ["andy"], priority=10, preferred_slot=meeting.slot
    )
    print(f"[boss] {exec_meeting.meeting_id}: {exec_meeting.status.value} "
          f"at {exec_meeting.slot}")
    show(app, "after bump", meeting.meeting_id)
    replacement_id = app.manager("phil").reschedule_map.get(meeting.meeting_id)
    if replacement_id:
        show(app, "auto-rescheduled as", replacement_id)

    print(f"\nmail inboxes: "
          f"{ {u: len(app.mail.inbox(u)) for u in ['andy', 'suzy', 'raj']} }")
    print(f"manual interventions needed: {app.mail.action_required}")


if __name__ == "__main__":
    main()
